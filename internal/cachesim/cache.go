// Package cachesim is a trace-driven, multi-core, set-associative cache
// simulator with directory-based MESI-style coherence between private
// caches. It stands in for the hardware the paper evaluated on (private
// L1/L2 per core, shared L3, coherence over QPI): Go cannot portably
// observe real cache misses, so the §IV experiments replay the algorithms'
// recorded access traces (internal/trace) through this model and compare
// miss and invalidation counts instead.
//
// The model is deliberately simple where simplicity does not distort the
// paper's claims: LRU replacement, write-allocate/write-back, a flat
// directory for coherence, and a single shared level behind the private
// hierarchies. It is a counting model, not a timing model.
package cachesim

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line size, power of two
	Ways      int // associativity; 0 means fully associative
}

// Sets returns the number of sets the configuration implies.
func (c Config) Sets() int {
	ways := c.Ways
	lines := c.SizeBytes / c.LineBytes
	if ways <= 0 || ways > lines {
		ways = lines
	}
	return lines / ways
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

// CacheStats counts events at one cache level.
type CacheStats struct {
	Hits        uint64
	Misses      uint64
	Evictions   uint64
	Writebacks  uint64 // dirty lines pushed to the next level
	Invalidated uint64 // lines removed by coherence actions
}

// Cache is a single set-associative level.
type Cache struct {
	cfg   Config
	sets  [][]line
	shift uint // log2(LineBytes)
	mask  uint64
	clock uint64
	stats CacheStats
}

// NewCache builds a cache level. LineBytes must be a power of two and
// SizeBytes a multiple of LineBytes*Ways.
func NewCache(cfg Config) *Cache {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic("cachesim: line size must be a positive power of two")
	}
	if cfg.SizeBytes < cfg.LineBytes {
		panic("cachesim: cache smaller than one line")
	}
	nsets := cfg.Sets()
	if nsets == 0 {
		panic("cachesim: zero sets")
	}
	ways := (cfg.SizeBytes / cfg.LineBytes) / nsets
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways]
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{cfg: cfg, sets: sets, shift: shift, mask: uint64(nsets - 1)}
}

// lineID converts an address to its line-granular identifier.
func (c *Cache) lineID(addr uint64) uint64 { return addr >> c.shift }

// setOf returns the set index for a line id.
func (c *Cache) setOf(id uint64) uint64 {
	if len(c.sets) == 1 {
		return 0
	}
	// Sets are a power of two for power-of-two configs; fall back to modulo
	// otherwise.
	if uint64(len(c.sets))&uint64(len(c.sets)-1) == 0 {
		return id & uint64(len(c.sets)-1)
	}
	return id % uint64(len(c.sets))
}

// Lookup probes for the line containing addr. On a hit it refreshes LRU,
// marks dirty if write, and returns true. On a miss it returns false and
// changes nothing.
func (c *Cache) Lookup(addr uint64, write bool) bool {
	id := c.lineID(addr)
	set := c.sets[c.setOf(id)]
	for i := range set {
		if set[i].valid && set[i].tag == id {
			c.clock++
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Insert places the line containing addr, evicting the LRU way if needed.
// It returns the evicted line id and whether it was dirty; evicted is
// false when a free way existed.
func (c *Cache) Insert(addr uint64, write bool) (evictedID uint64, evictedDirty, evicted bool) {
	id := c.lineID(addr)
	set := c.sets[c.setOf(id)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			goto place
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	evictedID, evictedDirty, evicted = set[victim].tag, set[victim].dirty, true
	c.stats.Evictions++
	if evictedDirty {
		c.stats.Writebacks++
	}
place:
	c.clock++
	set[victim] = line{tag: id, valid: true, dirty: write, lru: c.clock}
	return evictedID, evictedDirty, evicted
}

// Contains reports whether the line holding addr is resident.
func (c *Cache) Contains(addr uint64) bool {
	id := c.lineID(addr)
	set := c.sets[c.setOf(id)]
	for i := range set {
		if set[i].valid && set[i].tag == id {
			return true
		}
	}
	return false
}

// InvalidateLine removes the line with the given line id, reporting whether
// it was present and dirty.
func (c *Cache) InvalidateLine(id uint64) (present, dirty bool) {
	set := c.sets[c.setOf(id)]
	for i := range set {
		if set[i].valid && set[i].tag == id {
			present, dirty = true, set[i].dirty
			set[i] = line{}
			c.stats.Invalidated++
			return present, dirty
		}
	}
	return false, false
}

// CleanLine clears the dirty bit of the line (coherence downgrade M->S),
// reporting whether the line was present and had been dirty.
func (c *Cache) CleanLine(id uint64) (present, wasDirty bool) {
	set := c.sets[c.setOf(id)]
	for i := range set {
		if set[i].valid && set[i].tag == id {
			wasDirty = set[i].dirty
			set[i].dirty = false
			return true, wasDirty
		}
	}
	return false, false
}

// Stats returns the level's counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes reports the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// FlushDirty invalidates every line, returning how many were dirty — the
// end-of-run writeback accounting used by System.Flush.
func (c *Cache) FlushDirty() int {
	dirty := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid && set[i].dirty {
				dirty++
			}
			set[i] = line{}
		}
	}
	return dirty
}
