package cachesim

import (
	"testing"

	"mergepath/internal/trace"
)

func smallSystem(cores int) *System {
	return NewSystem(SystemConfig{
		Cores:   cores,
		Private: []Config{{SizeBytes: 512, LineBytes: 64, Ways: 2}},
		Shared:  &Config{SizeBytes: 4096, LineBytes: 64, Ways: 4},
	})
}

func TestNewSystemPanics(t *testing.T) {
	for name, cfg := range map[string]SystemConfig{
		"no-cores":  {Cores: 0, Shared: &Config{SizeBytes: 128, LineBytes: 64}},
		"no-levels": {Cores: 1},
		"mixed-lines": {Cores: 1, Private: []Config{{SizeBytes: 512, LineBytes: 64, Ways: 1}},
			Shared: &Config{SizeBytes: 4096, LineBytes: 128, Ways: 1}},
		"too-many-cores": {Cores: 65, Shared: &Config{SizeBytes: 128, LineBytes: 64}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			NewSystem(cfg)
		}()
	}
}

func TestColdMissesThenHits(t *testing.T) {
	sys := smallSystem(1)
	sys.Access(0, 0, false)
	sys.Access(0, 4, false) // same line
	st := sys.Stats()
	if st.PrivateMisses[0] != 1 || st.PrivateHits[0] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.SharedMisses != 1 || st.MemoryReads != 1 {
		t.Fatalf("shared/memory stats %+v", st)
	}
}

func TestSharedCacheCatchesPrivateEvictions(t *testing.T) {
	sys := smallSystem(1)
	// Touch 9 distinct lines: private holds 8 (512B/64B), so line 0 is
	// evicted from private but stays in the 64-line shared cache.
	for i := 0; i <= 8; i++ {
		sys.Access(0, uint64(i*64), false)
	}
	sys.Access(0, 0, false) // private miss, shared hit
	st := sys.Stats()
	if st.SharedHits != 1 {
		t.Fatalf("expected 1 shared hit, got %+v", st)
	}
	if st.MemoryReads != 9 {
		t.Fatalf("memory reads %d, want 9", st.MemoryReads)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	sys := smallSystem(2)
	sys.Access(0, 0, false) // core 0 reads the line
	sys.Access(1, 0, false) // core 1 reads: both share
	sys.Access(1, 0, true)  // core 1 writes: core 0's copy dies
	st := sys.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("invalidations=%d, want 1", st.Invalidations)
	}
	// Core 0 re-reads: private miss (copy was invalidated), and core 1's
	// dirty copy is downgraded with a coherence writeback.
	sys.Access(0, 0, false)
	st = sys.Stats()
	if st.Downgrades != 1 {
		t.Fatalf("downgrades=%d, want 1", st.Downgrades)
	}
	if st.PrivateMisses[0] != 3 { // two cold + one coherence miss
		t.Fatalf("private misses=%d, want 3", st.PrivateMisses[0])
	}
}

func TestRemoteReadOfCleanLineNoTraffic(t *testing.T) {
	sys := smallSystem(2)
	sys.Access(0, 0, false)
	sys.Access(1, 0, false)
	st := sys.Stats()
	if st.Invalidations != 0 || st.Downgrades != 0 {
		t.Fatalf("clean sharing should be free: %+v", st)
	}
}

func TestFalseSharingStorm(t *testing.T) {
	// Two cores alternately writing the same line must invalidate each
	// other every time — the coherence pathology the paper's §IV warns
	// about for private-cache systems.
	sys := smallSystem(2)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		sys.Access(0, 0, true)
		sys.Access(1, 4, true) // same line, different word
	}
	st := sys.Stats()
	if st.Invalidations < 2*rounds-2 {
		t.Fatalf("invalidations=%d, want ~%d", st.Invalidations, 2*rounds)
	}
}

func TestWritebackReachesMemory(t *testing.T) {
	// One-level system (no shared): dirty private evictions must count as
	// memory writes.
	sys := NewSystem(SystemConfig{
		Cores:   1,
		Private: []Config{{SizeBytes: 128, LineBytes: 64, Ways: 1}},
	})
	sys.Access(0, 0, true)
	sys.Access(0, 128, true) // evicts dirty line 0 (same set)
	st := sys.Stats()
	if st.MemoryWrites != 1 {
		t.Fatalf("memory writes=%d, want 1", st.MemoryWrites)
	}
}

func TestTwoPrivateLevels(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Cores: 1,
		Private: []Config{
			{SizeBytes: 128, LineBytes: 64, Ways: 1},  // tiny L1: 2 lines
			{SizeBytes: 1024, LineBytes: 64, Ways: 2}, // L2: 16 lines
		},
	})
	// Touch 4 lines mapping to L1 set 0: L1 thrashes, L2 holds them all.
	for round := 0; round < 2; round++ {
		for i := 0; i < 4; i++ {
			sys.Access(0, uint64(i*128), false)
		}
	}
	st := sys.Stats()
	if st.PrivateMisses[0] != 8 {
		t.Fatalf("L1 misses=%d, want 8 (thrash)", st.PrivateMisses[0])
	}
	if st.PrivateHits[1] < 3 {
		t.Fatalf("L2 hits=%d, want >=3 (victims cached)", st.PrivateHits[1])
	}
	if st.MemoryReads != 4 {
		t.Fatalf("memory reads=%d, want 4 (compulsory only)", st.MemoryReads)
	}
}

func TestRunReplaysEvents(t *testing.T) {
	sys := smallSystem(2)
	sys.Run([]trace.Event{
		{Core: 0, Addr: 0},
		{Core: 1, Addr: 0},
		{Core: 1, Addr: 0, Write: true},
	})
	if st := sys.Stats(); st.Accesses != 3 || st.Invalidations != 1 {
		t.Fatalf("replay stats %+v", st)
	}
}

func TestAccessPanicsOnBadCore(t *testing.T) {
	sys := smallSystem(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sys.Access(5, 0, false)
}

func TestMissRateAndTraffic(t *testing.T) {
	var st SystemStats
	if st.MissRate() != 0 {
		t.Error("zero-access miss rate")
	}
	st = SystemStats{Accesses: 10, PrivateMisses: []uint64{5}, MemoryReads: 3, MemoryWrites: 2}
	if st.MissRate() != 0.5 {
		t.Errorf("miss rate %f", st.MissRate())
	}
	if st.MemoryTraffic() != 5 {
		t.Errorf("traffic %d", st.MemoryTraffic())
	}
	if st.String() == "" {
		t.Error("empty string form")
	}
}
