package cachesim

import (
	"math/rand"
	"testing"
)

// refCache is an intentionally naive reference model of a set-associative
// LRU cache: per set, an ordered slice of line ids, most recently used
// first. The production Cache must agree with it event for event.
type refCache struct {
	sets      int
	ways      int
	lineShift uint
	mru       [][]uint64 // per set, MRU-first line ids
	dirty     map[uint64]bool
}

func newRefCache(cfg Config) *refCache {
	sets := cfg.Sets()
	ways := (cfg.SizeBytes / cfg.LineBytes) / sets
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &refCache{
		sets:      sets,
		ways:      ways,
		lineShift: shift,
		mru:       make([][]uint64, sets),
		dirty:     map[uint64]bool{},
	}
}

func (r *refCache) setOf(id uint64) int {
	if r.sets == 1 {
		return 0
	}
	return int(id % uint64(r.sets))
}

// access performs a full lookup+fill, returning whether it hit and, if a
// line was evicted, its id and dirtiness.
func (r *refCache) access(addr uint64, write bool) (hit bool, evicted bool, evID uint64, evDirty bool) {
	id := addr >> r.lineShift
	set := r.setOf(id)
	lines := r.mru[set]
	for i, l := range lines {
		if l == id {
			copy(lines[1:i+1], lines[:i])
			lines[0] = id
			if write {
				r.dirty[id] = true
			}
			return true, false, 0, false
		}
	}
	if len(lines) == r.ways {
		evID = lines[len(lines)-1]
		evDirty = r.dirty[evID]
		delete(r.dirty, evID)
		lines = lines[:len(lines)-1]
		evicted = true
	}
	r.mru[set] = append([]uint64{id}, lines...)
	if write {
		r.dirty[id] = true
	}
	return false, evicted, evID, evDirty
}

// TestCacheAgainstReferenceModel drives random traces through the real
// Cache and the naive model and demands identical hit/miss/eviction
// behaviour — the standard model-based check that the simulator measures
// what it claims.
func TestCacheAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	configs := []Config{
		{SizeBytes: 512, LineBytes: 64, Ways: 1},
		{SizeBytes: 512, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 4},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0}, // fully associative
		{SizeBytes: 2048, LineBytes: 128, Ways: 2},
	}
	for _, cfg := range configs {
		real := NewCache(cfg)
		ref := newRefCache(cfg)
		addrSpace := uint64(cfg.SizeBytes * 8) // 8x capacity: plenty of conflicts
		for step := 0; step < 20000; step++ {
			addr := uint64(rng.Int63n(int64(addrSpace)))
			write := rng.Intn(3) == 0
			wantHit, wantEv, wantEvID, wantEvDirty := ref.access(addr, write)
			gotHit := real.Lookup(addr, write)
			if gotHit != wantHit {
				t.Fatalf("cfg=%+v step=%d addr=%d: hit=%v want %v", cfg, step, addr, gotHit, wantHit)
			}
			if !gotHit {
				evID, evDirty, evicted := real.Insert(addr, write)
				if evicted != wantEv {
					t.Fatalf("cfg=%+v step=%d: evicted=%v want %v", cfg, step, evicted, wantEv)
				}
				if evicted && (evID != wantEvID || evDirty != wantEvDirty) {
					t.Fatalf("cfg=%+v step=%d: evicted (%d,%v) want (%d,%v)",
						cfg, step, evID, evDirty, wantEvID, wantEvDirty)
				}
			}
		}
		st := real.Stats()
		if st.Hits+st.Misses != 20000 {
			t.Fatalf("cfg=%+v: accounted %d accesses", cfg, st.Hits+st.Misses)
		}
	}
}

// TestFlushDirtyCountsAll verifies the flush accounting used by
// System.Flush.
func TestFlushDirtyCountsAll(t *testing.T) {
	c := NewCache(Config{SizeBytes: 512, LineBytes: 64, Ways: 2})
	c.Insert(0, true)
	c.Insert(64, false)
	c.Insert(128, true)
	if got := c.FlushDirty(); got != 2 {
		t.Fatalf("flushed %d dirty lines, want 2", got)
	}
	if c.Contains(0) || c.Contains(64) {
		t.Fatal("flush must invalidate everything")
	}
	if got := c.FlushDirty(); got != 0 {
		t.Fatalf("second flush found %d dirty lines", got)
	}
}

// TestSystemFlushReachesMemory checks end-of-run writeback accounting at
// the system level.
func TestSystemFlushReachesMemory(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Cores:   1,
		Private: []Config{{SizeBytes: 512, LineBytes: 64, Ways: 2}},
		Shared:  &Config{SizeBytes: 4096, LineBytes: 64, Ways: 4},
	})
	sys.Access(0, 0, true)
	sys.Access(0, 64, true)
	before := sys.Stats().MemoryWrites
	sys.Flush()
	after := sys.Stats().MemoryWrites
	if after-before != 2 {
		t.Fatalf("flush wrote %d lines to memory, want 2", after-before)
	}
}
