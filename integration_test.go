package mergepath_test

import (
	"context"
	"math/rand"
	"testing"

	"mergepath"
	"mergepath/internal/extsort"
	"mergepath/internal/kway"
	"mergepath/internal/pram"
	"mergepath/internal/psort"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

// TestPipelineEndToEnd drives the library the way a consumer would:
// unsorted shards -> parallel sorts -> k-way merge -> set algebra ->
// rank selection, validating every stage against the oracles.
func TestPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	const shards = 6
	const perShard = 20000
	p := 4

	// Stage 1: sort each shard (mix the sort variants deliberately).
	lists := make([][]int32, shards)
	var everything []int32
	for i := range lists {
		lists[i] = workload.Unsorted(rng, perShard)
		everything = append(everything, lists[i]...)
		switch i % 3 {
		case 0:
			mergepath.Sort(lists[i], p)
		case 1:
			mergepath.CacheEfficientSort(lists[i], 4096, p)
		default:
			mergepath.SortDataflow(lists[i], p, 0)
		}
		if !verify.Sorted(lists[i]) {
			t.Fatalf("shard %d unsorted after variant %d", i, i%3)
		}
	}

	// Stage 2: k-way merge, checked against the heap baseline.
	merged := mergepath.MergeK(lists, p)
	if !verify.Equal(merged, kway.HeapMerge(lists)) {
		t.Fatal("k-way merge diverges from heap baseline")
	}
	if !verify.SameMultiset(merged, everything) {
		t.Fatal("k-way merge lost elements")
	}

	// Stage 3: set algebra between the merged stream and one shard.
	inter := mergepath.Intersect(merged, lists[0], p)
	if !verify.SameMultiset(inter, lists[0]) {
		t.Fatal("intersection with a subset must return the subset (multiset-wise)")
	}
	diff := mergepath.Diff(merged, lists[0], p)
	if len(diff)+len(inter) != len(merged) {
		t.Fatal("diff + intersect must partition the merged stream")
	}
	union := mergepath.Union(merged, lists[0], p)
	if !verify.SameMultiset(union, merged) {
		t.Fatal("union with a subset must be the superset")
	}

	// Stage 4: rank selection agrees with materialized positions.
	half := mergepath.SearchDiagonal(lists[0], lists[1], perShard)
	two := make([]int32, 2*perShard)
	mergepath.Merge(lists[0], lists[1], two)
	prefix := make([]int32, perShard)
	mergepath.Merge(lists[0][:half.A], lists[1][:half.B], prefix)
	for i := range prefix {
		if prefix[i] != two[i] {
			t.Fatalf("selection split wrong at %d", i)
		}
	}
}

// TestExternalSortAgainstInMemory ties the extsort subsystem to the
// in-memory sorts: identical results from completely different execution
// paths.
func TestExternalSortAgainstInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	data := workload.Unsorted(rng, 50000)
	inMem := append([]int32(nil), data...)
	psort.Sort(inMem, 4)

	dev := extsort.NewBlockDevice[int32](len(data), 16)
	dev.Load(data)
	scratch := extsort.NewBlockDevice[int32](len(data), 16)
	if _, err := extsort.Sort(context.Background(), dev, scratch, len(data),
		extsort.Config{MemoryRecords: 1 << 10, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if !verify.Equal(dev.Snapshot(len(data)), inMem) {
		t.Fatal("external and in-memory sorts disagree")
	}
}

// TestPRAMAuditOfPublicAlgorithms re-runs the audited algorithm versions
// and checks the public implementations produce identical outputs — the
// substrate and the shipped code implement the same algorithm.
func TestPRAMAuditOfPublicAlgorithms(t *testing.T) {
	av, bv := workload.Pair(workload.Uniform, 5000, 7000, 3)
	m := pram.NewMachine(6)
	res := pram.ParallelMerge(m, m.NewArray(av), m.NewArray(bv))
	if !res.Report.CREW() {
		t.Fatal("audit failed")
	}
	out := make([]int32, len(av)+len(bv))
	mergepath.ParallelMerge(av, bv, out, 6)
	if !verify.Equal(out, res.Out.Snapshot()) {
		t.Fatal("public merge and audited merge outputs differ")
	}
}

// TestFacadeSurface exercises the remaining public wrappers not covered
// above so the facade cannot silently drift from the internals.
func TestFacadeSurface(t *testing.T) {
	a := []int32{1, 3, 5, 7, 9}
	b := []int32{2, 4, 6, 8}
	out := make([]int32, 9)
	mergepath.HierarchicalMerge(a, b, out, mergepath.HierarchicalConfig{Blocks: 2, TeamSize: 2})
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("hierarchical merge")
	}
	stats := mergepath.SegmentedMerge(a, b, out, mergepath.SegmentedConfig{Window: 3, Workers: 2})
	if !verify.IsMergeOf(out, a, b) || stats.Windows != 3 {
		t.Fatalf("segmented merge: %+v", stats)
	}
	less := func(x, y int32) bool { return x < y }
	mergepath.SegmentedMergeFunc(a, b, out, mergepath.SegmentedConfig{Window: 3}, less)
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("segmented merge func")
	}
	mergepath.ParallelMergeFunc(a, b, out, 3, less)
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("parallel merge func")
	}
	mergepath.MergeFunc(a, b, out, less)
	if !verify.IsMergeOf(out, a, b) {
		t.Fatal("merge func")
	}
	if got := mergepath.MergeKFunc([][]int32{{2}, {1}}, 2, less); got[0] != 1 || got[1] != 2 {
		t.Fatalf("mergek func: %v", got)
	}
	pts := mergepath.PartitionRanks(a, b, []int{0, 4, 9})
	if pts[0] != (mergepath.Point{}) || pts[2].Diagonal() != 9 {
		t.Fatalf("partition ranks: %+v", pts)
	}
	bounds := mergepath.Partition(a, b, 3)
	if len(bounds) != 4 {
		t.Fatalf("partition: %+v", bounds)
	}
	s := []int32{3, 1, 2}
	mergepath.SortFunc(s, 2, less)
	if !verify.Sorted(s) {
		t.Fatal("sort func")
	}
}
