// Top-level benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation (see DESIGN.md's experiment index). Run with
//
//	go test -bench=. -benchmem
//
// Wall-clock parallel speedups (Fig5, Sort) require a multi-core host;
// on single-core machines use the simulated experiments in cmd/mergebench
// (-experiment fig5sim) and cmd/crewcheck instead.
package mergepath_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mergepath/internal/baseline"
	"mergepath/internal/bitonic"
	"mergepath/internal/cachesim"
	"mergepath/internal/core"
	"mergepath/internal/kway"
	"mergepath/internal/pram"
	"mergepath/internal/psort"
	"mergepath/internal/spm"
	"mergepath/internal/trace"
	"mergepath/internal/workload"
)

const benchN = 1 << 20 // elements per input array for merge benches

func benchPair(b *testing.B, n int) (x, y, out []int32) {
	b.Helper()
	x, y = workload.Pair(workload.Uniform, n, n, 42)
	return x, y, make([]int32, 2*n)
}

// BenchmarkFig5 regenerates Figure 5's measurement: parallel Merge Path
// across thread counts and sizes. Speedup = time(p=1)/time(p).
func BenchmarkFig5(b *testing.B) {
	for _, n := range []int{1 << 20, 4 << 20} {
		x, y, out := benchPair(b, n)
		for _, p := range []int{1, 2, 4, 6, 8, 10, 12} {
			b.Run(fmt.Sprintf("n=%dM/p=%d", n>>20, p), func(b *testing.B) {
				b.SetBytes(int64(len(out)) * 4)
				for i := 0; i < b.N; i++ {
					core.ParallelMerge(x, y, out, p)
				}
			})
		}
	}
}

// BenchmarkOverhead regenerates the §VI remark: sequential merge vs
// single-threaded Merge Path (paper: ~6% overhead).
func BenchmarkOverhead(b *testing.B) {
	x, y, out := benchPair(b, benchN)
	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(int64(len(out)) * 4)
		for i := 0; i < b.N; i++ {
			baseline.SequentialMerge(x, y, out)
		}
	})
	b.Run("mergepath-p1", func(b *testing.B) {
		b.SetBytes(int64(len(out)) * 4)
		for i := 0; i < b.N; i++ {
			core.ParallelMerge(x, y, out, 1)
		}
	})
}

// BenchmarkPartition isolates Theorem 14's cost: p-1 diagonal searches.
func BenchmarkPartition(b *testing.B) {
	x, y, _ := benchPair(b, benchN)
	for _, p := range []int{2, 12, 64} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Partition(x, y, p)
			}
		})
	}
}

// BenchmarkSearchVariants is the search-formulation ablation: co-rank
// lower-bound vs the paper's matrix-transition bisection.
func BenchmarkSearchVariants(b *testing.B) {
	x, y, _ := benchPair(b, benchN)
	k := benchN // middle diagonal
	b.Run("corank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SearchDiagonal(x, y, k)
		}
	})
	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SearchDiagonalMatrix(x, y, k)
		}
	})
}

// BenchmarkRelatedWork regenerates E9: the §V algorithm family on one
// merge, p=4.
func BenchmarkRelatedWork(b *testing.B) {
	x, y, out := benchPair(b, benchN)
	const p = 4
	algos := map[string]func(){
		"mergepath":        func() { core.ParallelMerge(x, y, out, p) },
		"akl-santoro":      func() { baseline.AklSantoroMerge(x, y, out, p) },
		"deo-sarkar":       func() { baseline.DeoSarkarMerge(x, y, out, p) },
		"shiloach-vishkin": func() { baseline.ShiloachVishkinMerge(x, y, out, p) },
		"bitonic":          func() { bitonic.MergeParallel(x, y, out, p) },
	}
	for name, f := range algos {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(out)) * 4)
			for i := 0; i < b.N; i++ {
				f()
			}
		})
	}
}

// BenchmarkSPM regenerates the Algorithm 2 window ablation (wall time; the
// cache payoff is measured by cmd/cachesim, not here).
func BenchmarkSPM(b *testing.B) {
	x, y, out := benchPair(b, benchN)
	for _, window := range []int{1024, 4096, 16384} {
		for _, p := range []int{1, 4} {
			b.Run(fmt.Sprintf("L=%d/p=%d", window, p), func(b *testing.B) {
				b.SetBytes(int64(len(out)) * 4)
				for i := 0; i < b.N; i++ {
					spm.Merge(x, y, out, spm.Config{Window: window, Workers: p})
				}
			})
		}
	}
}

// BenchmarkSort regenerates E7: parallel merge sort across thread counts.
func BenchmarkSort(b *testing.B) {
	data := workload.Unsorted(rand.New(rand.NewSource(42)), benchN)
	scratch := make([]int32, benchN)
	for _, p := range []int{1, 2, 4, 8, 12} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			b.SetBytes(int64(benchN) * 4)
			for i := 0; i < b.N; i++ {
				copy(scratch, data)
				psort.Sort(scratch, p)
			}
		})
	}
}

// BenchmarkCacheEfficientSort regenerates the §IV.C variant's wall time
// next to the basic parallel sort.
func BenchmarkCacheEfficientSort(b *testing.B) {
	data := workload.Unsorted(rand.New(rand.NewSource(42)), benchN)
	scratch := make([]int32, benchN)
	cacheElems := (256 << 10) / 4
	b.Run("basic", func(b *testing.B) {
		b.SetBytes(int64(benchN) * 4)
		for i := 0; i < b.N; i++ {
			copy(scratch, data)
			psort.Sort(scratch, 4)
		}
	})
	b.Run("cache-efficient", func(b *testing.B) {
		b.SetBytes(int64(benchN) * 4)
		for i := 0; i < b.N; i++ {
			copy(scratch, data)
			psort.CacheEfficientSort(scratch, cacheElems, 4)
		}
	})
}

// BenchmarkBitonicSort regenerates the §V taxonomy contrast: network sort
// (superlinear work) vs merge sort at the same size.
func BenchmarkBitonicSort(b *testing.B) {
	const n = 1 << 18 // the network is O(N log^2 N); keep it modest
	data := workload.Unsorted(rand.New(rand.NewSource(42)), n)
	scratch := make([]int32, n)
	b.Run("bitonic-p4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, data)
			bitonic.SortParallel(scratch, 4)
		}
	})
	b.Run("mergesort-p4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, data)
			psort.Sort(scratch, 4)
		}
	})
}

// BenchmarkKWay regenerates the extension experiment: tree-of-merge-paths
// vs heap merge over 16 runs.
func BenchmarkKWay(b *testing.B) {
	const k, runLen = 16, 1 << 16
	lists := make([][]int32, k)
	for i := range lists {
		lists[i], _ = workload.Pair(workload.Uniform, runLen, 0, int64(i))
	}
	b.Run("tree-p4", func(b *testing.B) {
		b.SetBytes(int64(k*runLen) * 4)
		for i := 0; i < b.N; i++ {
			kway.Merge(lists, 4)
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.SetBytes(int64(k*runLen) * 4)
		for i := 0; i < b.N; i++ {
			kway.HeapMerge(lists)
		}
	})
}

// BenchmarkCacheSimThroughput measures the simulator substrate itself
// (accesses replayed per second), so cache-experiment runtimes are
// predictable.
func BenchmarkCacheSimThroughput(b *testing.B) {
	x, y, _ := benchPair(b, 1<<14)
	space := trace.NewSpace()
	lay := trace.StandardLayout(space, len(x), len(y), 64)
	events := trace.RoundRobin(trace.ParallelMerge(x, y, 4, lay))
	b.SetBytes(int64(len(events)))
	for i := 0; i < b.N; i++ {
		sys := cachesim.NewSystem(cachesim.SystemConfig{
			Cores:  4,
			Shared: &cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		})
		sys.Run(events)
	}
}

// BenchmarkPRAMAudit measures the conformance checker substrate.
func BenchmarkPRAMAudit(b *testing.B) {
	x, y, _ := benchPair(b, 1<<14)
	for i := 0; i < b.N; i++ {
		m := pram.NewMachine(4)
		pram.ParallelMerge(m, m.NewArray(x), m.NewArray(y))
	}
}
