# Convenience targets for the mergepath reproduction.

GO ?= go

.PHONY: all build vet test race verify cover bench bench-kway experiments fmt serve loadtest loadtest-wire chaos soak lint-docs fuzz-wire kway-diff cluster cluster-quick jobs-soak jobs-soak-quick restart-quick restart-soak corrupt-check

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: vet
	$(GO) test -race ./internal/core ./internal/psort ./internal/spm \
		./internal/kway ./internal/setops ./internal/sched ./internal/baseline \
		./internal/server ./internal/batch ./internal/stats ./internal/fault \
		./internal/overload ./internal/resilience ./internal/router \
		./internal/jobs ./internal/extsort ./internal/wire

# Godoc audit: every exported identifier in the service-facing packages
# must carry a doc comment (see cmd/lintdocs). Fails listing each gap.
lint-docs:
	$(GO) run ./cmd/lintdocs ./internal/server ./internal/core \
		./internal/batch ./internal/stats ./internal/overload \
		./internal/resilience ./internal/router ./internal/promtext \
		./internal/jobs ./internal/extsort ./internal/wire \
		./internal/kway ./internal/fault ./cmd/mergerouter

# Quick k-way differential: every strategy (heap, tree, co-rank) must be
# byte-identical to the sequential heap baseline across k x sizes x
# duplicate densities, and the co-rank cuts must satisfy their
# invariants (sum to rank, pairwise order, monotone windows). See
# docs/KWAY.md for the algorithm these tests pin.
kway-diff:
	$(GO) test -run 'TestMergeIntoMatchesHeap|TestCoRank' -count=1 ./internal/kway

# Short coverage-guided fuzz of the binary frame decoder: truncated,
# oversized and corrupt frames must error cleanly (no panic, no
# over-allocation), and every accepted frame must re-encode to the
# exact input bytes (canonical encoding). The corpus seeds live in the
# test; 10 seconds is enough to walk every header-validation branch.
fuzz-wire:
	$(GO) test -run FuzzDecode -fuzz FuzzDecode -fuzztime 10s ./internal/wire

# Full pre-merge gate: build, vet, unit tests, godoc audit, race suite
# (which includes the fault-injection lifecycle tests in internal/server
# and internal/fault), a chaos pass against a live in-process daemon,
# the in-process cluster soak (3 backends + router, one backend
# faulted, under -race), the quick jobs soak (concurrent submits +
# cancels + GC under fault injection, -race), and the quick in-process
# restart-recovery drill (journal replay, orphan GC, corruption
# detection, -race). The longer overload/breaker soak is its own target
# (`make soak`); the multi-process cluster is `make cluster`; the
# extended jobs soak is `make jobs-soak`; the real SIGKILL restart soak
# is `make restart-soak`.
verify: build vet test lint-docs kway-diff race fuzz-wire chaos cluster-quick jobs-soak-quick restart-quick

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# K-way strategy comparison (heap vs tree vs co-rank at k=4/16/64 over a
# fixed 1M-element output) plus the co-rank partitioner in isolation and
# the external-sort fan-in delta.
bench-kway:
	$(GO) test -bench 'BenchmarkKWayStrategies|BenchmarkCoRankSearch' -benchmem ./internal/kway
	$(GO) test -bench BenchmarkGatherStrategies -benchmem -run xxx ./internal/router
	$(GO) test -bench BenchmarkSortFanInStrategies -benchmem ./internal/extsort

# Regenerate every table of EXPERIMENTS.md (laptop-scale sizes).
experiments:
	$(GO) run ./cmd/mergebench -experiment all -sizes 1M,4M -reps 3
	$(GO) run ./cmd/sortbench -experiment all -sizes 1M
	$(GO) run ./cmd/cachesim -experiment all -elements 65536
	$(GO) run ./cmd/crewcheck -elements 65536

fmt:
	gofmt -w .

# Run the merge/sort service daemon on :8080.
serve:
	$(GO) run ./cmd/mergepathd -addr :8080

# Closed-loop load test against an in-process daemon; the JSON summary is
# the service-throughput benchmark artifact tracked across PRs. The run
# deliberately overdrives a tight overload target through the resilient
# client so the artifact records the whole control loop: degradation
# timeline, 429s with honored Retry-After, hedges, breaker cycles (X14).
loadtest:
	$(GO) run ./cmd/mergeload -duration 5s -conc 64 -size 4096 -dist skew \
		-resilient -hedge-after 25ms -overload-target 2ms -overload-interval 50ms \
		-json BENCH_server.json

# The loadtest run plus the wire-format decode comparison: the same 1M
# element merges driven as JSON and as binary frames against a clean
# in-process daemon, recorded in BENCH_server.json's `wire` section.
# The protocol's reason to exist is decode_p99_ratio well under 1/3.
loadtest-wire:
	$(GO) run ./cmd/mergeload -duration 5s -conc 64 -size 4096 -dist skew \
		-resilient -hedge-after 25ms -overload-target 2ms -overload-interval 50ms \
		-wire -wire-size 1048576 \
		-json BENCH_server.json

# Chaos pass: full load run with fault injection (panics, errors, latency)
# against an in-process daemon; fails if the daemon dies or no panic was
# actually recovered.
chaos:
	$(GO) run ./cmd/mergeload -chaos -duration 3s -conc 16 -dist skew

# In-process router cluster soak under -race: three real backends (one
# injecting errors into 80% of its merge rounds) behind one router;
# asserts the success rate stays >=95%, every 200 is the exact reference
# merge, and only the faulted backend's breaker opened.
cluster-quick:
	$(GO) test -race -run TestClusterSoak -count=1 ./internal/router

# Multi-process cluster: build real binaries, start three mergepathd
# backends (one with -fault), front them with mergerouter, drive the
# router with mergeload, and assert degradation stayed local. See
# scripts/cluster.sh for knobs (PORT_BASE, DURATION, FAULT_SPEC).
cluster:
	./scripts/cluster.sh

# Jobs subsystem soak under -race: concurrent sortfile submits, cancels
# and TTL GC sweeps against one manager with fault injection (errors,
# panics, latency), asserting no leaked goroutines or spill files and
# balanced overload accounting. The quick variant runs inside `make
# verify`; the long one multiplies the iteration count via the env knob.
jobs-soak-quick:
	$(GO) test -race -run TestJobsSoak -count=1 ./internal/jobs

jobs-soak:
	MERGEPATH_JOBS_SOAK=1 $(GO) test -race -run TestJobsSoak -v -count=1 -timeout 10m ./internal/jobs

# Quick in-process kill-restart drill (runs inside `make verify`): a
# journaled manager finishes a job, a fake crash leaves in-flight
# journal records + orphan files + a torn journal line, and a second
# manager over the same spill dir must recover the dataset and the
# byte-identical result, fail the in-flight job with a restart reason,
# GC the orphans, and detect deliberate corruption. docs/DURABILITY.md.
restart-quick:
	$(GO) test -race -run 'TestRestartRecovery|TestJournalDisabled' -count=1 ./internal/jobs

# Real kill-restart soak: build mergepathd, SIGKILL it mid-job, restart
# on the same -spill-dir, and assert completed results stream
# byte-identical, in-flight jobs surface failed(restart), no orphaned
# temp files remain, and a flipped result byte is detected with
# mergepathd_jobs_corruption_detected_total >= 1. See
# scripts/restart-soak.sh for knobs (PORT, RECORDS).
restart-soak:
	./scripts/restart-soak.sh

# Corruption detection gate: seal a spill file, flip one byte, and
# assert the typed corruption error names the damaged block (plus the
# read-side bit-flip fault op being caught by the verified reader).
corrupt-check:
	$(GO) test -run 'TestCorruptCheck|TestVerifiedReaderCatchesInjectedFlip' -count=1 -v ./internal/extsort

# Overload/resilience soak: 60 seconds of injected latency under -race.
# Drives the full control loop — healthy -> degraded -> shedding with
# computed Retry-After 429s, client breaker open -> half-open -> closed
# after the fault clears — and fails on any wrong merge byte. The same
# test runs for a few seconds in the plain `test`/`race` targets.
soak:
	MERGEPATH_SOAK=60s $(GO) test -race -run TestChaosSoak -v -timeout 10m ./internal/server
