# Convenience targets for the mergepath reproduction.

GO ?= go

.PHONY: all build vet test race verify cover bench experiments fmt serve loadtest chaos lint-docs

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: vet
	$(GO) test -race ./internal/core ./internal/psort ./internal/spm \
		./internal/kway ./internal/setops ./internal/sched ./internal/baseline \
		./internal/server ./internal/batch ./internal/stats ./internal/fault

# Godoc audit: every exported identifier in the service-facing packages
# must carry a doc comment (see cmd/lintdocs). Fails listing each gap.
lint-docs:
	$(GO) run ./cmd/lintdocs ./internal/server ./internal/core \
		./internal/batch ./internal/stats

# Full pre-merge gate: build, vet, unit tests, godoc audit, race suite
# (which includes the fault-injection lifecycle tests in internal/server
# and internal/fault), and a chaos pass against a live in-process daemon.
verify: build vet test lint-docs race chaos

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table of EXPERIMENTS.md (laptop-scale sizes).
experiments:
	$(GO) run ./cmd/mergebench -experiment all -sizes 1M,4M -reps 3
	$(GO) run ./cmd/sortbench -experiment all -sizes 1M
	$(GO) run ./cmd/cachesim -experiment all -elements 65536
	$(GO) run ./cmd/crewcheck -elements 65536

fmt:
	gofmt -w .

# Run the merge/sort service daemon on :8080.
serve:
	$(GO) run ./cmd/mergepathd -addr :8080

# Closed-loop load test against an in-process daemon; the JSON summary is
# the service-throughput benchmark artifact tracked across PRs.
loadtest:
	$(GO) run ./cmd/mergeload -duration 5s -conc 16 -dist skew -json BENCH_server.json

# Chaos pass: full load run with fault injection (panics, errors, latency)
# against an in-process daemon; fails if the daemon dies or no panic was
# actually recovered.
chaos:
	$(GO) run ./cmd/mergeload -chaos -duration 3s -conc 16 -dist skew
