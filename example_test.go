package mergepath_test

import (
	"fmt"

	"mergepath"
)

func ExampleParallelMerge() {
	a := []int{1, 3, 5, 7}
	b := []int{2, 4, 6}
	out := make([]int, len(a)+len(b))
	mergepath.ParallelMerge(a, b, out, 4)
	fmt.Println(out)
	// Output: [1 2 3 4 5 6 7]
}

func ExampleSearchDiagonal() {
	a := []int{10, 20, 30, 40}
	b := []int{15, 25, 35}
	// Where does the merged output split into its first 3 elements?
	pt := mergepath.SearchDiagonal(a, b, 3)
	fmt.Printf("first 3 outputs = a[:%d] + b[:%d]\n", pt.A, pt.B)
	// Output: first 3 outputs = a[:2] + b[:1]
}

func ExamplePartition() {
	a := []int{1, 2, 3, 4}
	b := []int{5, 6, 7, 8}
	for i, pt := range mergepath.Partition(a, b, 2) {
		fmt.Printf("boundary %d: %d from a, %d from b\n", i, pt.A, pt.B)
	}
	// Output:
	// boundary 0: 0 from a, 0 from b
	// boundary 1: 4 from a, 0 from b
	// boundary 2: 4 from a, 4 from b
}

func ExampleSort() {
	s := []string{"pear", "apple", "fig", "date", "cherry", "banana"}
	mergepath.Sort(s, 3)
	fmt.Println(s)
	// Output: [apple banana cherry date fig pear]
}

func ExampleSegmentedMerge() {
	a := []int{1, 4, 9}
	b := []int{2, 3, 10}
	out := make([]int, 6)
	stats := mergepath.SegmentedMerge(a, b, out, mergepath.SegmentedConfig{Window: 2, Workers: 2})
	fmt.Println(out, "windows:", stats.Windows)
	// Output: [1 2 3 4 9 10] windows: 3
}

func ExampleMergeK() {
	lists := [][]int{{1, 5}, {2, 6}, {3, 4}}
	fmt.Println(mergepath.MergeK(lists, 2))
	// Output: [1 2 3 4 5 6]
}

func ExampleMergeFunc() {
	type user struct {
		name string
		age  int
	}
	byAge := func(x, y user) bool { return x.age < y.age }
	a := []user{{"ana", 20}, {"bob", 35}}
	b := []user{{"cyn", 25}, {"dee", 35}}
	out := make([]user, 4)
	mergepath.MergeFunc(a, b, out, byAge)
	for _, u := range out {
		fmt.Println(u.name, u.age)
	}
	// Output:
	// ana 20
	// cyn 25
	// bob 35
	// dee 35
}

func ExampleUnion() {
	a := []int{1, 3, 3, 5}
	b := []int{3, 4, 5, 5}
	fmt.Println(mergepath.Union(a, b, 2))
	fmt.Println(mergepath.Intersect(a, b, 2))
	fmt.Println(mergepath.Diff(a, b, 2))
	// Output:
	// [1 3 3 4 5 5]
	// [3 5]
	// [1 3]
}

func ExampleSortDataflow() {
	s := []int{9, 4, 7, 1, 8, 2}
	mergepath.SortDataflow(s, 3, 2)
	fmt.Println(s)
	// Output: [1 2 4 7 8 9]
}

func ExamplePartitionRanks() {
	a := []int{10, 30, 50}
	b := []int{20, 40}
	for _, pt := range mergepath.PartitionRanks(a, b, []int{1, 3}) {
		fmt.Printf("rank %d: %d from a, %d from b\n", pt.Diagonal(), pt.A, pt.B)
	}
	// Output:
	// rank 1: 1 from a, 0 from b
	// rank 3: 2 from a, 1 from b
}

func ExampleMergedRange() {
	a := []int{1, 4, 7, 10}
	b := []int{2, 5, 8}
	page := make([]int, 3)
	mergepath.MergedRange(a, b, 2, 5, page) // ranks 2,3,4 of the merge
	fmt.Println(page)
	// Output: [4 5 7]
}

func ExampleMergeIter() {
	it := mergepath.MergeIter([][]int{{1, 4}, {2, 5}, {3}})
	for {
		v, ok := it.Next()
		if !ok {
			break
		}
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: 1 2 3 4 5
}

func ExampleMergeBatch() {
	pairs := []mergepath.BatchPair[int]{
		{A: []int{1, 5}, B: []int{3}, Out: make([]int, 3)},
		{A: []int{2}, B: []int{0, 9}, Out: make([]int, 3)},
	}
	mergepath.MergeBatch(pairs, 4)
	fmt.Println(pairs[0].Out, pairs[1].Out)
	// Output: [1 3 5] [0 2 9]
}

func ExampleMergeBatchStats() {
	pairs := []mergepath.BatchPair[int]{
		{A: []int{1, 5}, B: []int{3}, Out: make([]int, 3)},
		{A: []int{2}, B: []int{0, 9}, Out: make([]int, 3)},
	}
	loads := mergepath.MergeBatchStats(pairs, 2)
	fmt.Println(pairs[0].Out, pairs[1].Out)
	for w, l := range loads {
		fmt.Printf("worker %d: %d elements, %d pairs\n", w, l.Elements, l.Pairs)
	}
	// Output:
	// [1 3 5] [0 2 9]
	// worker 0: 3 elements, 1 pairs
	// worker 1: 3 elements, 1 pairs
}
