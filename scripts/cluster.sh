#!/usr/bin/env bash
# Multi-process cluster soak: three mergepathd backends (one injecting
# errors into a large fraction of its merge rounds), one mergerouter in
# front, mergeload driving the router. Passes when the fault stayed
# local: the load run finishes with a high success rate, the router's
# /healthz still reports ok, and the router's metrics show reroutes
# (traffic diverted around the faulted node) with errors concentrated
# on it.
#
# Knobs (environment):
#   PORT_BASE   first backend port (default 18080; router on PORT_BASE+10)
#   DURATION    measured mergeload run length (default 5s)
#   FAULT_SPEC  fault injected into backend 3 (default merge:error=0.5)
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_BASE="${PORT_BASE:-18080}"
DURATION="${DURATION:-5s}"
FAULT_SPEC="${FAULT_SPEC:-merge:error=0.5}"
ROUTER_PORT=$((PORT_BASE + 10))
BIN=$(mktemp -d)
LOGS=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]:-}"; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$BIN"
    echo "cluster: logs kept in $LOGS"
}
trap cleanup EXIT

echo "cluster: building binaries"
go build -o "$BIN/mergepathd" ./cmd/mergepathd
go build -o "$BIN/mergerouter" ./cmd/mergerouter
go build -o "$BIN/mergeload" ./cmd/mergeload

BACKENDS=""
for i in 0 1 2; do
    port=$((PORT_BASE + i))
    args=(-addr "127.0.0.1:$port" -workers 2)
    if [ "$i" = 2 ]; then
        args+=(-fault "$FAULT_SPEC")
        echo "cluster: backend $i on :$port (FAULTED: $FAULT_SPEC)"
    else
        echo "cluster: backend $i on :$port"
    fi
    "$BIN/mergepathd" "${args[@]}" >"$LOGS/backend$i.log" 2>&1 &
    PIDS+=($!)
    BACKENDS="$BACKENDS${BACKENDS:+,}http://127.0.0.1:$port"
done

"$BIN/mergerouter" -addr "127.0.0.1:$ROUTER_PORT" -backends "$BACKENDS" \
    -scatter-threshold 4096 -health-interval 100ms \
    >"$LOGS/router.log" 2>&1 &
PIDS+=($!)
echo "cluster: router on :$ROUTER_PORT -> $BACKENDS"

# Wait for the router to answer (it polls backends synchronously at
# startup, so "router up" implies "fleet view populated").
for _ in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$ROUTER_PORT/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
health=$(curl -fsS "http://127.0.0.1:$ROUTER_PORT/healthz")
echo "cluster: router healthz: $health"
case "$health" in
*'"role":"router"'*) ;;
*) echo "cluster: FAIL router healthz did not report role=router" >&2; exit 1 ;;
esac

echo "cluster: driving load for $DURATION"
"$BIN/mergeload" -url "http://127.0.0.1:$ROUTER_PORT" \
    -duration "$DURATION" -warmup 1s -conc 16 -size 2048 -dist skew \
    | tee "$LOGS/mergeload.log"

# The run must have succeeded mostly (mergeload errors line) and the
# router must still be healthy with reroutes recorded.
if ! grep -q 'target: router' "$LOGS/mergeload.log"; then
    echo "cluster: FAIL mergeload did not detect the router target" >&2
    exit 1
fi
errline=$(grep -o 'errors=[0-9]*' "$LOGS/mergeload.log" | head -1)
okline=$(grep -E '^ *TOTAL' "$LOGS/mergeload.log" | awk '{print $2}')
errs="${errline#errors=}"
ok="${okline:-0}"
echo "cluster: ok=$ok errors=$errs"
if [ "$ok" -eq 0 ]; then
    echo "cluster: FAIL no request succeeded through the router" >&2
    exit 1
fi
# Bounded error rate: errors must stay under 5% of successes.
if [ "$errs" -gt $((ok / 20)) ]; then
    echo "cluster: FAIL error rate too high (errors=$errs ok=$ok) — fault did not stay local" >&2
    exit 1
fi

metrics=$(curl -fsS "http://127.0.0.1:$ROUTER_PORT/metrics")
rerouted=$(printf '%s' "$metrics" | grep -o '"rerouted": *[0-9]*' | grep -o '[0-9]*')
echo "cluster: router rerouted=$rerouted"
if [ "${rerouted:-0}" -eq 0 ]; then
    echo "cluster: FAIL router never rerouted despite a faulted backend" >&2
    exit 1
fi

health=$(curl -fsS "http://127.0.0.1:$ROUTER_PORT/healthz")
case "$health" in
*'"status":"ok"'*) ;;
*) echo "cluster: FAIL router unhealthy after soak: $health" >&2; exit 1 ;;
esac

echo "cluster: PASS — fault stayed local; router healthy, traffic rerouted"
