#!/usr/bin/env bash
# Kill-restart durability soak: one mergepathd on a real -spill-dir
# finishes a sort job, then gets SIGKILLed while a second job is
# running. A restarted daemon on the same spill dir must:
#
#   1. stream the completed result byte-identical (journal + checksums),
#   2. report the in-flight job failed with a restart reason (never a
#      hung "running"),
#   3. leave zero orphaned temp files in the spill dir,
#   4. detect a deliberately flipped result byte as corruption
#      (mergepathd_jobs_corruption_detected_total >= 1), and
#   5. expose the journal/recovery counters on /metrics/prom.
#
# Knobs (environment):
#   PORT     daemon port (default 18200)
#   RECORDS  dataset size in 8-byte records (default 400000)
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PORT:-18200}"
RECORDS="${RECORDS:-400000}"
BASE="http://127.0.0.1:$PORT"
BIN=$(mktemp -d)
WORK=$(mktemp -d)
SPILL="$WORK/spill"
LOGS=$(mktemp -d)
DAEMON_PID=""

cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
    echo "restart-soak: logs kept in $LOGS"
}
trap cleanup EXIT

fail() {
    echo "restart-soak: FAIL $*" >&2
    exit 1
}

json_field() { # json_field <field> — first string value of "field"
    grep -o "\"$1\":\"[^\"]*\"" | head -1 | cut -d'"' -f4
}

start_daemon() { # start_daemon [extra flags...]
    "$BIN/mergepathd" -addr "127.0.0.1:$PORT" -workers 2 \
        -spill-dir "$SPILL" -job-memory 16384 "$@" \
        >>"$LOGS/mergepathd.log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "daemon never answered /healthz"
}

wait_job() { # wait_job <id> <want-state> <seconds>
    local id=$1 want=$2 secs=$3 state=""
    for _ in $(seq 1 $((secs * 10))); do
        state=$(curl -fsS "$BASE/v1/jobs/$id" | json_field state)
        [ "$state" = "$want" ] && return 0
        case "$state" in failed | canceled | expired)
            [ "$want" = "$state" ] || fail "job $id ended $state waiting for $want" ;;
        esac
        sleep 0.1
    done
    fail "job $id stuck in '$state' waiting for $want"
}

prom_value() { # prom_value <series> — numeric value from /metrics/prom
    curl -fsS "$BASE/metrics/prom" | awk -v s="$1" '$1 == s {print $2}'
}

echo "restart-soak: building mergepathd"
go build -o "$BIN/mergepathd" ./cmd/mergepathd

echo "restart-soak: dataset of $RECORDS records"
head -c $((RECORDS * 8)) /dev/urandom >"$WORK/data.bin"

# Phase 1: a daemon whose sorts stall 5s mid-job (injected latency), so
# the SIGKILL below lands deterministically while a job is running.
start_daemon -fault "sortfile:latency=5s@1"

DS=$(curl -fsS -X POST --data-binary @"$WORK/data.bin" \
    -H 'Content-Type: application/octet-stream' "$BASE/v1/datasets" | json_field id)
[ -n "$DS" ] || fail "dataset upload returned no id"
echo "restart-soak: dataset $DS"

JOB1=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"type\":\"sortfile\",\"dataset\":\"$DS\"}" "$BASE/v1/jobs" | json_field id)
[ -n "$JOB1" ] || fail "job submit returned no id"
echo "restart-soak: job1 $JOB1 (will complete)"
wait_job "$JOB1" done 60
curl -fsS "$BASE/v1/jobs/$JOB1/result" -o "$WORK/result1.bin"
SHA1=$(sha256sum "$WORK/result1.bin" | cut -d' ' -f1)
echo "restart-soak: job1 result $SHA1"

JOB2=$(curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"type\":\"sortfile\",\"dataset\":\"$DS\"}" "$BASE/v1/jobs" | json_field id)
[ -n "$JOB2" ] || fail "second job submit returned no id"
wait_job "$JOB2" running 30
echo "restart-soak: job2 $JOB2 is running — SIGKILL mid-job"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

# Phase 2: restart on the same spill dir, no faults.
echo "restart-soak: restarting on the same -spill-dir"
start_daemon

# 1. Completed result byte-identical and still streamable.
curl -fsS "$BASE/v1/jobs/$JOB1/result" -o "$WORK/result1b.bin" \
    || fail "recovered result not streamable"
SHA1B=$(sha256sum "$WORK/result1b.bin" | cut -d' ' -f1)
[ "$SHA1" = "$SHA1B" ] || fail "recovered result differs ($SHA1 vs $SHA1B)"
echo "restart-soak: recovered result byte-identical"

# 2. In-flight job failed with a restart reason, not hung.
JOB2_DOC=$(curl -fsS "$BASE/v1/jobs/$JOB2")
JOB2_STATE=$(printf '%s' "$JOB2_DOC" | json_field state)
[ "$JOB2_STATE" = "failed" ] || fail "in-flight job is '$JOB2_STATE', want failed: $JOB2_DOC"
case "$JOB2_DOC" in
*restart*) ;;
*) fail "in-flight job error lacks a restart reason: $JOB2_DOC" ;;
esac
echo "restart-soak: in-flight job failed(restart) as required"

# 3. Zero orphaned temp files.
ORPHANS=$(find "$SPILL" -name '*.tmp' -o -name '*.scratch' | wc -l)
[ "$ORPHANS" -eq 0 ] || fail "$ORPHANS orphaned temp files survived recovery: $(ls "$SPILL")"
echo "restart-soak: no orphaned temp files"

# 5. Journal/recovery counters visible on /metrics/prom.
REPLAYED=$(prom_value mergepathd_jobs_journal_replayed_total)
RECOVERED=$(prom_value mergepathd_jobs_recovered_results_total)
RECFAILED=$(prom_value mergepathd_jobs_recovered_failed_total)
[ "${REPLAYED:-0}" -gt 0 ] || fail "journal_replayed_total is ${REPLAYED:-missing}"
[ "${RECOVERED:-0}" -ge 1 ] || fail "recovered_results_total is ${RECOVERED:-missing}"
[ "${RECFAILED:-0}" -ge 1 ] || fail "recovered_failed_total is ${RECFAILED:-missing}"
echo "restart-soak: recovery counters: replayed=$REPLAYED results=$RECOVERED failed=$RECFAILED"

# 4. Flip one byte of the completed result on disk: the stream must
# abort (typed corruption, not silent wrong bytes) and the counter rise.
dd if=/dev/zero of="$SPILL/$JOB1.result" bs=1 count=1 \
    seek=$((RECORDS * 4 + 3)) conv=notrunc status=none
if curl -fsS "$BASE/v1/jobs/$JOB1/result" -o "$WORK/corrupt.bin" 2>>"$LOGS/curl.log"; then
    SHAC=$(sha256sum "$WORK/corrupt.bin" | cut -d' ' -f1)
    [ "$SHAC" != "$SHA1" ] || fail "corrupted result streamed as if intact"
fi
CORRUPT=$(prom_value mergepathd_jobs_corruption_detected_total)
[ "${CORRUPT:-0}" -ge 1 ] || fail "corruption_detected_total is ${CORRUPT:-missing} after byte flip"
echo "restart-soak: corruption detected (counter=$CORRUPT)"

echo "restart-soak: PASS — journal replay, byte-identical results, failed(restart) in-flight jobs, no orphans, corruption detected"
