module mergepath

go 1.22
