// Command mergerouter is the scatter-gather routing tier: one HTTP
// front door over N mergepathd backends (see internal/router). Small
// requests are routed whole with rendezvous hashing plus least-loaded
// selection over each backend's polled /healthz state; large merges are
// split with the paper's diagonal co-ranking cut, served by independent
// backends, and recombined into a response byte-identical to a single
// node's. Each backend is driven through its own resilient client
// (retries, retry budget, Retry-After, per-endpoint circuit breakers),
// so one faulty or browned-out node diverts traffic instead of failing
// requests.
//
// Endpoints mirror mergepathd: POST /v1/merge /v1/sort /v1/mergek
// /v1/setops /v1/select; GET /healthz /metrics /metrics/prom (metric
// reference in docs/METRICS.md).
//
// Usage:
//
//	mergerouter -addr :8090 -backends http://n1:8080,http://n2:8080,http://n3:8080
//	mergerouter -scatter-threshold 131072 -max-scatter 8
//	mergerouter -access-log                # per-request route/scatter span log
//	curl -s localhost:8090/v1/merge -d '{"a":[1,3],"b":[2,4]}'
//	curl -s localhost:8090/metrics/prom
//
// SIGINT/SIGTERM stops the listener gracefully, finishes in-flight
// requests, then exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mergepath/internal/kway"
	"mergepath/internal/resilience"
	"mergepath/internal/router"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		backends  = flag.String("backends", "", "comma-separated mergepathd base URLs (required)")
		threshold = flag.Int("scatter-threshold", 1<<17, "smallest merge (total elements) split across backends instead of routed whole")
		maxScat   = flag.Int("max-scatter", 8, "scatter fan-out cap (windows per request)")
		interval  = flag.Duration("health-interval", 250*time.Millisecond, "backend /healthz poll period")
		timeout   = flag.Duration("timeout", 15*time.Second, "end-to-end budget per routed request, failover included")
		maxBody   = flag.Int64("max-body", 32<<20, "request body limit in bytes (413 beyond)")
		retries   = flag.Int("retries", 1, "retries per backend before failing over to another")
		hedge     = flag.Duration("hedge-after", 0, "duplicate a slow backend request after this delay (0 = off)")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
		accessLog = flag.Bool("access-log", false, "log one structured line per request with its ID and per-stage span timings")
		gather    = flag.String("gather-strategy", "auto", "scatter-gather recombination strategy: auto, heap, tree or corank (docs/KWAY.md)")
	)
	flag.Parse()

	gstrat, err := kway.ParseStrategy(*gather)
	if err != nil {
		log.Fatalf("-gather-strategy: %v", err)
	}

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		log.Fatal("-backends is required: comma-separated mergepathd base URLs")
	}

	rt, err := router.New(router.Config{
		Backends:         urls,
		HealthInterval:   *interval,
		ScatterThreshold: *threshold,
		MaxScatter:       *maxScat,
		GatherStrategy:   gstrat,
		MaxBodyBytes:     *maxBody,
		RequestTimeout:   *timeout,
		Resilience: resilience.Config{
			MaxRetries: *retries,
			HedgeAfter: *hedge,
		},
		AccessLog: *accessLog,
	})
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: rt}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("mergerouter listening on %s (backends=%d scatter-threshold=%d max-scatter=%d)",
		*addr, len(urls), *threshold, *maxScat)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (budget %v)", *drainFor)
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	rt.Close()
	snap := rt.Snapshot()
	buf, _ := json.Marshal(snap)
	fmt.Fprintf(os.Stderr, "mergerouter: drained cleanly; final metrics: %s\n", buf)
}
