// Command cachesim regenerates the §IV cache experiments on the trace-driven
// simulator: E5 (basic vs segmented merge traffic), E6 (associativity needed
// by SPM), the private-cache coherence measurement, and E8 (merge-round
// traffic of the two sort variants).
//
// Usage:
//
//	cachesim -experiment spm
//	cachesim -experiment all -elements 131072
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mergepath/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "one of: spm, assoc, private, sort, fig5, all")
		elements   = flag.Int("elements", 1<<17, "elements per input array (simulation is per-access; keep modest)")
		seed       = flag.Int64("seed", 7, "workload seed")
		lineBytes  = flag.Int("line", 64, "cache line size in bytes")
	)
	flag.Parse()

	opt := harness.CacheOptions{Elements: *elements, Seed: *seed, LineBytes: *lineBytes}
	experiments := map[string]func(harness.CacheOptions) *harness.Table{
		"spm":     harness.SPMvsBasic,
		"fig5":    harness.Fig5Roofline,
		"assoc":   harness.Associativity,
		"private": harness.PrivateCaches,
		"sort":    harness.SortCacheTraffic,
	}
	order := []string{"spm", "assoc", "private", "sort", "fig5"}
	switch *experiment {
	case "all":
		for _, name := range order {
			fmt.Println(experiments[name](opt))
		}
	default:
		f, ok := experiments[*experiment]
		if !ok {
			fmt.Fprintf(os.Stderr, "cachesim: unknown experiment %q (want one of %s, all)\n",
				*experiment, strings.Join(order, ", "))
			os.Exit(1)
		}
		fmt.Println(f(opt))
	}
}
