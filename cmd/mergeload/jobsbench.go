package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"slices"
	"time"

	"mergepath/internal/harness"
	"mergepath/internal/jobs"
	"mergepath/internal/server"
	"mergepath/internal/stats"
)

// The -jobs mode: instead of hammering the request/response endpoints,
// drive the asynchronous out-of-core path end to end — upload one
// dataset, run -jobs-count sortfile jobs against it, poll each with a
// monotone-progress check, stream and verify every result byte against a
// local in-RAM sort, and report where job time went (queue wait, copy-in,
// run formation, merge passes) from the per-job spans the daemon records.

// jobsBenchDoc is the jobs-mode section of BENCH_server.json.
type jobsBenchDoc struct {
	// Records is the dataset size in 8-byte records.
	Records int `json:"records"`
	// MemoryRecords is the server-reported per-job memory budget.
	MemoryRecords int `json:"memory_records,omitempty"`
	// Count is the number of sortfile jobs run.
	Count int `json:"count"`
	// UploadMS is the dataset upload wall time.
	UploadMS float64 `json:"upload_ms"`
	// StreamMS is the mean result-streaming wall time.
	StreamMS float64 `json:"stream_ms"`
	// Phases aggregates the per-job span timings by phase name
	// (queue_wait, copy_in, run_formation, merge, copyback, total).
	Phases map[string]stats.HistogramSnapshot `json:"phases"`
	// MergePasses is the engine's merge-pass count (same for every job:
	// same data, same budget).
	MergePasses int `json:"merge_passes"`
	// FanIn is the engine's effective merge fan-in.
	FanIn int `json:"fan_in"`
	// BlockIO is reads+writes per job from the engine's stats.
	BlockIO uint64 `json:"block_io"`
	// PeakBufferRecords is the engine's peak in-memory allocation; must
	// stay at or under MemoryRecords.
	PeakBufferRecords int `json:"peak_buffer_records"`
	// Verified is true when every streamed result was byte-identical to
	// the local in-RAM sort (the run fails otherwise, so a written doc
	// always says true; the field keeps the artifact self-describing).
	Verified bool `json:"verified"`
}

// runJobsBench drives the full dataset -> job -> result lifecycle and
// aggregates phase timings. Any divergence — progress regression, a job
// not reaching done, wrong result bytes — is fatal.
func runJobsBench(base string, client *http.Client, o options) *jobsBenchDoc {
	rng := rand.New(rand.NewSource(o.seed))
	vals := make([]int64, o.jobsRecords)
	for i := range vals {
		vals[i] = rng.Int63() - rng.Int63()
	}
	payload := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(payload[i*8:], uint64(v))
	}
	want := slices.Clone(vals)
	slices.Sort(want)
	wantBytes := make([]byte, len(payload))
	for i, v := range want {
		binary.LittleEndian.PutUint64(wantBytes[i*8:], uint64(v))
	}

	doc := &jobsBenchDoc{Records: o.jobsRecords, Count: o.jobsCount,
		Phases: map[string]stats.HistogramSnapshot{}}
	phases := map[string]*stats.Histogram{}

	t0 := time.Now()
	resp, err := client.Post(base+"/v1/datasets", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		fatalf("jobs: upload: %v", err)
	}
	var ds jobs.Dataset
	err = json.NewDecoder(resp.Body).Decode(&ds)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		fatalf("jobs: upload status %d err %v", resp.StatusCode, err)
	}
	doc.UploadMS = float64(time.Since(t0)) / float64(time.Millisecond)
	fmt.Printf("jobs: uploaded %d records (%.1f MB) in %.0fms as %s\n",
		ds.Records, float64(ds.Bytes)/1e6, doc.UploadMS, ds.ID)

	var streamTotal time.Duration
	for i := 0; i < o.jobsCount; i++ {
		v := runOneJob(base, client, ds.ID, wantBytes, phases)
		if v.Stats != nil {
			doc.MergePasses = v.Stats.MergePasses
			doc.FanIn = v.Stats.FanIn
			doc.BlockIO = v.Stats.BlockReads + v.Stats.BlockWrites
			doc.PeakBufferRecords = v.Stats.PeakBufferRecords
		}
		streamTotal += v.streamed
	}
	doc.StreamMS = float64(streamTotal) / float64(time.Millisecond) / float64(o.jobsCount)
	doc.Verified = true

	if snap := fetchServerSnapshot(base, client); snap != nil && snap.Jobs != nil {
		doc.MemoryRecords = snap.Jobs.MemoryRecords
	}

	t := harness.NewTable(
		fmt.Sprintf("jobs mode: %d sortfile jobs over %d records (budget %d, %d merge passes, fan-in %d)",
			o.jobsCount, o.jobsRecords, doc.MemoryRecords, doc.MergePasses, doc.FanIn),
		"phase", "count", "p50", "p95", "max")
	for _, name := range []string{"queue_wait", "copy_in", "run_formation", "merge", "copyback", "total"} {
		h, ok := phases[name]
		if !ok {
			continue
		}
		s := h.Snapshot()
		t.Addf(name, s.Count, fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.Max))
		doc.Phases[name] = s
	}
	fmt.Println(t)
	fmt.Printf("jobs: all %d results verified byte-identical to the in-RAM sort; block I/O %d, peak buffer %d records\n",
		o.jobsCount, doc.BlockIO, doc.PeakBufferRecords)
	return doc
}

// jobOutcome is one finished job's view plus client-side timings.
type jobOutcome struct {
	jobs.View
	streamed time.Duration
}

// runOneJob submits, polls (asserting monotone progress), streams and
// verifies one sortfile job, folding its spans into the phase histograms.
func runOneJob(base string, client *http.Client, dsID string, wantBytes []byte, phases map[string]*stats.Histogram) jobOutcome {
	body, _ := json.Marshal(server.JobRequest{Type: "sortfile", Dataset: dsID})
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("jobs: submit: %v", err)
	}
	var v jobs.View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		fatalf("jobs: submit status %d err %v (%s)", resp.StatusCode, err, v.Error)
	}

	last := -1.0
	deadline := time.Now().Add(5 * time.Minute)
	for v.State == jobs.Pending || v.State == jobs.Running {
		if time.Now().After(deadline) {
			fatalf("jobs: %s stuck in %s at %.2f", v.ID, v.State, v.Progress)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := client.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			fatalf("jobs: poll: %v", err)
		}
		var got jobs.View
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			fatalf("jobs: poll decode: %v", err)
		}
		if got.Progress < last {
			fatalf("jobs: progress regressed %.4f -> %.4f", last, got.Progress)
		}
		last = got.Progress
		v = got
	}
	if v.State != jobs.Done {
		fatalf("jobs: %s ended %s: %s", v.ID, v.State, v.Error)
	}
	for _, sp := range v.Spans {
		h, ok := phases[sp.Name]
		if !ok {
			h = &stats.Histogram{}
			phases[sp.Name] = h
		}
		h.Observe(time.Duration(sp.DurMS * float64(time.Millisecond)))
	}

	t0 := time.Now()
	resp, err = client.Get(base + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		fatalf("jobs: result: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		fatalf("jobs: result status %d err %v", resp.StatusCode, err)
	}
	if !bytes.Equal(raw, wantBytes) {
		fatalf("jobs: %s result differs from the in-RAM sort", v.ID)
	}
	return jobOutcome{View: v, streamed: time.Since(t0)}
}

// writeJobsJSON writes the jobs-mode benchmark artifact: the shared
// benchDoc envelope with the Jobs section populated and the request-path
// sections left zero.
func writeJobsJSON(o options, jb *jobsBenchDoc, base string, client *http.Client, target string) {
	var doc benchDoc
	doc.Config.Target = target
	doc.Config.Mode = "jobs"
	doc.Config.Endpoint = "jobs"
	doc.Config.Conc = 1
	doc.Config.Size = o.jobsRecords
	doc.Config.Dist = "random"
	doc.Config.Duration = "n/a"
	doc.Jobs = jb
	if resp, err := client.Get(base + "/metrics"); err == nil {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		doc.ServerMetrics = raw
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("marshal results: %v", err)
	}
	if err := os.WriteFile(o.jsonPath, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", o.jsonPath, err)
	}
	fmt.Printf("wrote %s\n", o.jsonPath)
}
