// Command mergeload is a load generator for mergepathd: it drives
// configurable closed-loop (fixed concurrency) or open-loop (fixed
// arrival rate) merge/sort/k-way traffic at a daemon, then prints a
// throughput/latency table and, with -json, a machine-readable summary
// (BENCH_server.json in the Makefile) so the service's scaling curve is
// part of the benchmark trajectory.
//
// With no -url it self-serves: an in-process server on a loopback
// listener, so `make loadtest` measures the full HTTP stack with zero
// setup.
//
// Usage:
//
//	mergeload -duration 5s -conc 16 -size 256 -dist skew
//	mergeload -url http://localhost:8080 -rate 2000 -endpoint mergek
//	mergeload -json BENCH_server.json
//	mergeload -chaos -duration 3s            # self-serve with fault injection
//	mergeload -resilient -retries 3 -hedge-after 20ms   # retrying/hedging client
//	mergeload -resilient -overload-target 2ms -overload-interval 50ms  # drive the shed loop
//
// -chaos runs the self-served daemon with the fault injector enabled
// (panics, errors and latency on every op) and verifies at the end that
// the daemon survived: /healthz still answers 200 and /metrics shows the
// recovered-panic count. It exits nonzero if the daemon died — the
// executable form of the panic-isolation guarantee.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/harness"
	"mergepath/internal/jobs"
	"mergepath/internal/kway"
	"mergepath/internal/overload"
	"mergepath/internal/resilience"
	"mergepath/internal/server"
	"mergepath/internal/stats"
)

type options struct {
	url       string
	duration  time.Duration
	warmup    time.Duration
	conc      int
	rate      float64
	endpoint  string
	size      int
	dist      string
	seed      int64
	jsonPath  string
	workers   int
	queue     int
	chaos     bool
	chaosSpec string

	overloadTarget   time.Duration
	overloadInterval time.Duration

	resilient  bool
	retries    int
	hedgeAfter time.Duration
	budgetRate float64

	jobsMode    bool
	jobsRecords int
	jobsCount   int
	jobsMemory  int

	maxBody  int64
	wireMode bool
	wireSize int

	kwayStrategy string
}

// defaultChaosSpec is the -chaos fault mix: enough panics and errors to
// exercise every recovery path, with latency jitter to shake the batch
// window, while most requests still succeed.
const defaultChaosSpec = "*:panic=0.02,error=0.02,latency=1ms@0.2"

// canned is a pre-marshalled request body (generation must not sit on
// the measured path).
type canned struct {
	path  string
	body  []byte
	ctype string // request Content-Type and Accept; empty = application/json
	elems int    // elements the server must produce for this request
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "daemon base URL (empty = in-process self-serve)")
	flag.DurationVar(&o.duration, "duration", 5*time.Second, "measured run length")
	flag.DurationVar(&o.warmup, "warmup", 500*time.Millisecond, "untimed warmup length")
	flag.IntVar(&o.conc, "conc", 16, "closed-loop concurrency (outstanding requests)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	flag.StringVar(&o.endpoint, "endpoint", "mix", "merge | sort | mergek | setops | mix")
	flag.IntVar(&o.size, "size", 256, "mean elements per input array")
	flag.StringVar(&o.dist, "dist", "skew", "request size distribution: fixed | uniform | skew")
	flag.Int64Var(&o.seed, "seed", 42, "workload seed")
	flag.StringVar(&o.jsonPath, "json", "", "write machine-readable results to this file")
	flag.IntVar(&o.workers, "workers", 0, "self-serve: pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queue, "queue", 256, "self-serve: admission queue depth")
	flag.BoolVar(&o.chaos, "chaos", false, "self-serve with fault injection, verify the daemon survives")
	flag.StringVar(&o.chaosSpec, "chaos-spec", defaultChaosSpec, "fault spec used by -chaos")
	flag.DurationVar(&o.overloadTarget, "overload-target", 5*time.Millisecond, "self-serve: CoDel queue-sojourn target")
	flag.DurationVar(&o.overloadInterval, "overload-interval", 100*time.Millisecond, "self-serve: overload evaluation interval")
	flag.BoolVar(&o.resilient, "resilient", false, "drive traffic through the resilient client (retries, Retry-After, circuit breaker)")
	flag.IntVar(&o.retries, "retries", 2, "resilient: max retries per request")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "resilient: duplicate a request if no response after this long (0 = off)")
	flag.Float64Var(&o.budgetRate, "retry-budget", 50, "resilient: retry token refill rate per second")
	flag.BoolVar(&o.jobsMode, "jobs", false, "drive the async dataset/jobs API instead of the request endpoints: upload, submit sortfile jobs, poll, stream + verify results")
	flag.IntVar(&o.jobsRecords, "jobs-records", 1<<18, "jobs mode: dataset size in 8-byte records")
	flag.IntVar(&o.jobsCount, "jobs-count", 4, "jobs mode: sortfile jobs to run against the dataset")
	flag.IntVar(&o.jobsMemory, "jobs-memory", 1<<14, "jobs mode, self-serve: per-job memory budget in records (keep it well under -jobs-records to force external merge passes)")
	flag.Int64Var(&o.maxBody, "max-body", 0, "self-serve: request body cap in bytes (0 = server default; raise for -size beyond ~500k elements of JSON)")
	flag.BoolVar(&o.wireMode, "wire", false, "after the main run, compare JSON vs binary-frame decode cost against a dedicated in-process daemon (adds a wire section to -json output)")
	flag.IntVar(&o.wireSize, "wire-size", 1<<20, "wire comparison: total elements per merge request")
	flag.StringVar(&o.kwayStrategy, "kway-strategy", "auto", "self-serve: k-way merge strategy for /v1/mergek and job fan-in: auto, heap, tree or corank (docs/KWAY.md)")
	flag.Parse()

	if o.chaos && o.url != "" {
		fatalf("-chaos needs the in-process self-served daemon; drop -url (or start mergepathd with -fault instead)")
	}

	kstrat, err := kway.ParseStrategy(o.kwayStrategy)
	if err != nil {
		fatalf("-kway-strategy: %v", err)
	}

	var srv *server.Server
	base := o.url
	if base == "" {
		cfg := server.Config{
			Workers:      o.workers,
			QueueDepth:   o.queue,
			MaxBodyBytes: o.maxBody,
			KWayStrategy: kstrat,
			Overload: overload.Config{
				Target:   o.overloadTarget,
				Interval: o.overloadInterval,
			},
			Jobs: jobs.Config{
				MemoryRecords: o.jobsMemory,
				MaxConcurrent: 2,
				MaxQueued:     16,
				KWay:          kstrat,
			},
		}
		if o.chaos {
			inj, err := fault.Parse(o.chaosSpec, o.seed)
			if err != nil {
				fatalf("-chaos-spec: %v", err)
			}
			cfg.Fault = inj
			fmt.Printf("chaos mode: injecting %q\n", o.chaosSpec)
		}
		srv = server.New(cfg)
		ts := httptest.NewServer(srv)
		defer ts.Close()
		// Drain the server too (not just the listener) so the jobs
		// manager's private spill dir is removed, whatever path exits.
		defer func() {
			dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Drain(dctx)
		}()
		base = ts.URL
		fmt.Printf("self-serving on %s (workers=%d queue=%d)\n", base, srv.Workers(), o.queue)
	}

	reqs := buildRequests(o)
	client := &http.Client{Timeout: 10 * time.Second}
	var rclient *resilience.Client
	if o.resilient {
		rclient = resilience.New(client, resilience.Config{
			MaxRetries: o.retries,
			HedgeAfter: o.hedgeAfter,
			Budget:     resilience.BudgetConfig{RatePerSec: o.budgetRate},
			Seed:       o.seed,
		})
		fmt.Printf("resilient client: retries=%d hedge-after=%v budget=%.0f/s\n",
			o.retries, o.hedgeAfter, o.budgetRate)
	}

	target := detectTarget(base, client)
	fmt.Printf("target: %s at %s\n", target, base)

	if o.jobsMode {
		jb := runJobsBench(base, client, o)
		if o.jsonPath != "" {
			writeJobsJSON(o, jb, base, client, target)
		}
		return
	}

	run(base, client, rclient, reqs, o.warmup, o, nil) // warmup, result discarded
	timeline := newStateTimeline()
	res := run(base, client, rclient, reqs, o.duration, o, timeline)

	printTable(o, res)
	if target != "router" {
		// The per-round balance report is node-specific; a router's
		// /metrics speaks a different schema.
		printServerReport(fetchServerSnapshot(base, client))
	}
	if rclient != nil {
		printClientReport(rclient)
	}
	timeline.print()
	var wdoc *wireBenchDoc
	if o.wireMode {
		wdoc = runWireCompare(o)
	}
	if o.jsonPath != "" {
		var snap *server.MetricsSnapshot
		if target != "router" {
			snap = fetchServerSnapshot(base, client)
		}
		writeJSON(o, res, base, client, snap, rclient, timeline, target, wdoc)
	}
	if o.chaos {
		verifyChaos(srv, base, client, res)
	}
}

// printClientReport summarizes the resilient client's view of the run:
// how hard it had to work to deliver the goodput the table reports.
func printClientReport(rc *resilience.Client) {
	st := rc.StatsSnapshot()
	fmt.Printf("client: attempts=%d retries=%d retry_after_honored=%d hedges=%d hedge_wins=%d"+
		" breaker(opens=%d closes=%d rejects=%d) budget_denied=%d\n",
		st.Attempts, st.Retries, st.RetryAfterHonored, st.Hedges, st.HedgeWins,
		st.BreakerOpens, st.BreakerCloses, st.BreakerRejects, st.BudgetDenied)
	if states := rc.BreakerStates(); len(states) > 0 {
		fmt.Printf("client breakers: %v\n", states)
	}
}

// stateChange is one observed server overload-state transition, relative
// to the start of the measured run.
type stateChange struct {
	OffsetMS float64 `json:"offset_ms"`
	State    string  `json:"state"`
}

// stateTimeline polls /healthz during the measured run and records the
// degradation-state transitions the server reported.
type stateTimeline struct {
	mu      sync.Mutex
	changes []stateChange
	stop    chan struct{}
	done    chan struct{}
}

func newStateTimeline() *stateTimeline {
	return &stateTimeline{stop: make(chan struct{}), done: make(chan struct{})}
}

// watch polls /healthz every 100ms until stopped, appending a change
// whenever the reported status differs from the last one seen.
func (tl *stateTimeline) watch(base string, client *http.Client, start time.Time) {
	defer close(tl.done)
	last := ""
	for {
		select {
		case <-tl.stop:
			return
		case <-time.After(100 * time.Millisecond):
		}
		resp, err := client.Get(base + "/healthz")
		if err != nil {
			continue
		}
		var health struct {
			Status string `json:"status"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&health)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if health.Status != "" && health.Status != last {
			last = health.Status
			tl.mu.Lock()
			tl.changes = append(tl.changes, stateChange{
				OffsetMS: float64(time.Since(start)) / float64(time.Millisecond),
				State:    health.Status,
			})
			tl.mu.Unlock()
		}
	}
}

func (tl *stateTimeline) halt() {
	close(tl.stop)
	<-tl.done
}

func (tl *stateTimeline) snapshot() []stateChange {
	if tl == nil {
		return nil
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return append([]stateChange(nil), tl.changes...)
}

func (tl *stateTimeline) print() {
	changes := tl.snapshot()
	if len(changes) == 0 {
		return
	}
	parts := make([]string, len(changes))
	for i, c := range changes {
		parts[i] = fmt.Sprintf("%.0fms:%s", c.OffsetMS, c.State)
	}
	fmt.Printf("server state timeline: %s\n", strings.Join(parts, " -> "))
}

// detectTarget asks /healthz which tier the run is driving: mergepathd
// reports role "node", mergerouter reports "router". Silent or roleless
// targets default to "node" (daemons predating the role field).
func detectTarget(base string, client *http.Client) string {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return "node"
	}
	defer resp.Body.Close()
	var h struct {
		Role string `json:"role"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || h.Role == "" {
		return "node"
	}
	return h.Role
}

// fetchServerSnapshot pulls the daemon's own /metrics view of the run;
// nil when the daemon is unreachable or speaks a different schema.
func fetchServerSnapshot(base string, client *http.Client) *server.MetricsSnapshot {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil
	}
	return &snap
}

// printServerReport prints the server-side balance view: how many
// coalesced and whole-pool rounds ran and the per-worker load-imbalance
// ratios — the live check of the paper's Theorem 5 guarantee (≈1.0 for
// whole-pool rounds).
func printServerReport(snap *server.MetricsSnapshot) {
	if snap == nil {
		return
	}
	lr := snap.Pool.LastRound
	fmt.Printf("server: rounds batch=%d run=%d; imbalance last=%.3f max=%.3f mean=%.3f"+
		" (last round: %d workers, %d..%d elems/worker)\n",
		snap.Pool.BatchRounds, snap.Pool.RunRounds,
		lr.Imbalance, snap.Pool.ImbalanceMax, snap.Pool.ImbalanceMean,
		lr.Workers, lr.Min, lr.Max)
}

// verifyChaos is the pass/fail gate of -chaos: after a full run under
// fault injection the daemon must still be alive and must have actually
// recovered panics (a chaos run where nothing fired proves nothing).
func verifyChaos(srv *server.Server, base string, client *http.Client, res *result) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		fatalf("chaos: daemon unreachable after run: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("chaos: healthz = %d after run, daemon did not survive", resp.StatusCode)
	}
	snap := srv.Snapshot()
	fmt.Printf("chaos: daemon survived; panics_recovered=%d canceled=%d shed_at_flush=%d faulted_5xx=%d\n",
		snap.Pool.PanicsRecovered, snap.Queue.Canceled, snap.Queue.ShedAtFlush, res.faulted.Load())
	if snap.Pool.PanicsRecovered == 0 {
		fatalf("chaos: no panics were injected+recovered; raise -duration or the spec's panic probability")
	}
	if res.ok.Load() == 0 {
		fatalf("chaos: no request succeeded")
	}
}

// result aggregates one run.
type result struct {
	elapsed        time.Duration
	ok, shed, errs atomic.Int64
	throttled      atomic.Int64 // 429s from the overload controller
	rejected       atomic.Int64 // local fail-fast rejects (breaker open)
	faulted        atomic.Int64 // 5xx from injected faults (chaos mode)
	elems          atomic.Int64 // output elements across ok requests
	dropped        atomic.Int64 // open loop: arrivals skipped, all slots busy
	latency        stats.Histogram
	perEndpoint    map[string]*stats.Histogram
	perEndpointOK  map[string]*atomic.Int64
	perStage       map[string]*stats.Histogram // from Server-Timing headers
	mu             sync.Mutex
}

// refused returns the count of outcomes the service turned away (503
// shed + 429 throttled + local breaker rejects) and the total completed
// outcomes (open-loop drops excluded: those never left the client).
func (r *result) refused() (refused, total int64) {
	refused = r.shed.Load() + r.throttled.Load() + r.rejected.Load()
	total = refused + r.ok.Load() + r.errs.Load() + r.faulted.Load()
	return refused, total
}

// rejectionRatio is the fraction of completed outcomes the service
// refused — the load-shedding headline number for a run.
func (r *result) rejectionRatio() float64 {
	refused, total := r.refused()
	if total == 0 {
		return 0
	}
	return float64(refused) / float64(total)
}

func newResult() *result {
	return &result{
		perEndpoint:   map[string]*stats.Histogram{},
		perEndpointOK: map[string]*atomic.Int64{},
		perStage:      map[string]*stats.Histogram{},
	}
}

func (r *result) endpointSlot(path string) (*stats.Histogram, *atomic.Int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.perEndpoint[path]
	if !ok {
		h = &stats.Histogram{}
		r.perEndpoint[path] = h
		r.perEndpointOK[path] = &atomic.Int64{}
	}
	return h, r.perEndpointOK[path]
}

func (r *result) stageSlot(stage string) *stats.Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.perStage[stage]
	if !ok {
		h = &stats.Histogram{}
		r.perStage[stage] = h
	}
	return h
}

// parseServerTiming extracts per-stage durations from a Server-Timing
// header value ("stage;dur=1.23, ..." — dur in milliseconds, per the
// header's RFC and the daemon's span exposition). Repeated stage names
// accumulate.
func parseServerTiming(h string) map[string]time.Duration {
	if h == "" {
		return nil
	}
	out := map[string]time.Duration{}
	for _, part := range strings.Split(h, ",") {
		fields := strings.Split(strings.TrimSpace(part), ";")
		if len(fields) < 2 {
			continue
		}
		name := strings.TrimSpace(fields[0])
		for _, f := range fields[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(f), "dur="); ok {
				if ms, err := strconv.ParseFloat(v, 64); err == nil {
					out[name] += time.Duration(ms * float64(time.Millisecond))
				}
			}
		}
	}
	return out
}

// buildRequests pre-marshals a pool of request bodies matching the
// endpoint mix and size distribution.
func buildRequests(o options) []canned {
	rng := rand.New(rand.NewSource(o.seed))
	sizeOf := func() int {
		switch o.dist {
		case "fixed":
			return o.size
		case "uniform":
			return 1 + rng.Intn(2*o.size)
		default: // "skew": mostly small, a heavy tail of 16x requests
			if rng.Intn(20) == 0 {
				return o.size * 16
			}
			return 1 + rng.Intn(o.size)
		}
	}
	sorted := func(n int) []int64 {
		s := make([]int64, n)
		v := int64(0)
		for i := range s {
			v += rng.Int63n(8)
			s[i] = v
		}
		return s
	}
	endpoints := []string{o.endpoint}
	if o.endpoint == "mix" {
		// Weighted toward merge: the coalescing path is the one under test.
		endpoints = []string{"merge", "merge", "merge", "merge", "sort", "mergek", "setops"}
	}
	const poolSize = 256
	reqs := make([]canned, 0, poolSize)
	for i := 0; i < poolSize; i++ {
		ep := endpoints[rng.Intn(len(endpoints))]
		n := sizeOf()
		var body any
		var path string
		elems := 0
		switch ep {
		case "merge":
			a, b := sorted(n), sorted(n)
			body, path, elems = server.MergeRequest{A: a, B: b}, "/v1/merge", 2*n
		case "sort":
			data := make([]int64, 2*n)
			for j := range data {
				data[j] = rng.Int63n(1 << 30)
			}
			body, path, elems = server.SortRequest{Data: data}, "/v1/sort", 2*n
		case "mergek":
			lists := make([][]int64, 4)
			for j := range lists {
				lists[j] = sorted(n / 2)
				elems += len(lists[j])
			}
			body, path = server.MergeKRequest{Lists: lists}, "/v1/mergek"
		case "setops":
			ops := []string{"union", "intersect", "diff"}
			body, path, elems = server.SetOpsRequest{Op: ops[rng.Intn(3)], A: sorted(n), B: sorted(n)}, "/v1/setops", 2*n
		default:
			fatalf("unknown endpoint %q", ep)
		}
		buf, err := json.Marshal(body)
		if err != nil {
			fatalf("marshal: %v", err)
		}
		reqs = append(reqs, canned{path: path, body: buf, elems: elems})
	}
	return reqs
}

// run drives traffic for d and returns the aggregate. When rclient is
// non-nil requests go through the resilient client (retries, honored
// Retry-After, optional hedging, circuit breaker); tl, when non-nil,
// watches the server's overload state for the duration.
func run(base string, client *http.Client, rclient *resilience.Client, reqs []canned, d time.Duration, o options, tl *stateTimeline) *result {
	res := newResult()
	stop := make(chan struct{})
	time.AfterFunc(d, func() { close(stop) })
	start := time.Now()
	if tl != nil {
		go tl.watch(base, client, start)
		defer tl.halt()
	}

	fire := func(c canned) {
		h, okCount := res.endpointSlot(c.path)
		ctype := c.ctype
		if ctype == "" {
			ctype = "application/json"
		}
		t0 := time.Now()
		var resp *http.Response
		var err error
		if rclient != nil {
			var hdr http.Header
			if c.ctype != "" {
				// Symmetric format: a binary request also asks for a
				// binary response, so both directions are measured.
				hdr = http.Header{"Accept": []string{c.ctype}}
			}
			resp, err = rclient.PostHeaders(context.Background(), base+c.path, ctype, hdr, c.body)
		} else {
			req, rerr := http.NewRequest(http.MethodPost, base+c.path, bytes.NewReader(c.body))
			if rerr != nil {
				res.errs.Add(1)
				return
			}
			req.Header.Set("Content-Type", ctype)
			if c.ctype != "" {
				req.Header.Set("Accept", c.ctype)
			}
			resp, err = client.Do(req)
		}
		lat := time.Since(t0)
		if err != nil {
			if errors.Is(err, resilience.ErrBreakerOpen) {
				// Fail-fast local reject: the breaker answers in
				// nanoseconds, so a closed loop would spin through
				// millions of rejects and distort the error count.
				// Count it once and idle briefly, like a polite client.
				res.rejected.Add(1)
				time.Sleep(2 * time.Millisecond)
				return
			}
			res.errs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			res.ok.Add(1)
			res.elems.Add(int64(c.elems))
			res.latency.Observe(lat)
			h.Observe(lat)
			okCount.Add(1)
			for stage, d := range parseServerTiming(resp.Header.Get("Server-Timing")) {
				res.stageSlot(stage).Observe(d)
			}
		case resp.StatusCode == http.StatusServiceUnavailable:
			res.shed.Add(1)
		case resp.StatusCode == http.StatusTooManyRequests:
			res.throttled.Add(1)
		case o.chaos && resp.StatusCode >= http.StatusInternalServerError:
			// Chaos mode injects 500s on purpose; count them apart from
			// real errors so the summary distinguishes havoc from bugs.
			res.faulted.Add(1)
		default:
			res.errs.Add(1)
		}
	}

	var wg sync.WaitGroup
	if o.rate <= 0 {
		// Closed loop: conc workers, each back-to-back.
		for w := 0; w < o.conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(o.seed + int64(w)))
				for {
					select {
					case <-stop:
						return
					default:
					}
					fire(reqs[rng.Intn(len(reqs))])
				}
			}(w)
		}
	} else {
		// Open loop: Poisson-ish fixed-interval arrivals; a bounded slot
		// pool keeps the client itself from unbounded goroutine growth —
		// arrivals finding no free slot are counted as dropped.
		slots := make(chan struct{}, 4*o.conc)
		interval := time.Duration(float64(time.Second) / o.rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		rng := rand.New(rand.NewSource(o.seed))
	loop:
		for {
			select {
			case <-stop:
				break loop
			case <-ticker.C:
				select {
				case slots <- struct{}{}:
					wg.Add(1)
					go func(c canned) {
						defer wg.Done()
						defer func() { <-slots }()
						fire(c)
					}(reqs[rng.Intn(len(reqs))])
				default:
					res.dropped.Add(1)
				}
			}
		}
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

func printTable(o options, res *result) {
	mode := "closed"
	if o.rate > 0 {
		mode = fmt.Sprintf("open @ %.0f req/s", o.rate)
	}
	agg := res.latency.Snapshot()
	t := harness.NewTable(
		fmt.Sprintf("mergeload: %s loop, conc=%d, dist=%s, size=%d, %v",
			mode, o.conc, o.dist, o.size, res.elapsed.Round(time.Millisecond)),
		"endpoint", "ok", "req/s", "Melem/s", "p50", "p95", "p99", "max")
	secs := res.elapsed.Seconds()
	for path, h := range res.perEndpoint {
		s := h.Snapshot()
		okN := res.perEndpointOK[path].Load()
		t.Addf(path, okN, fmt.Sprintf("%.0f", float64(okN)/secs), "-",
			fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.P99), fmtDur(s.Max))
	}
	t.Addf("TOTAL", res.ok.Load(),
		fmt.Sprintf("%.0f", float64(res.ok.Load())/secs),
		fmt.Sprintf("%.2f", float64(res.elems.Load())/secs/1e6),
		fmtDur(agg.P50), fmtDur(agg.P95), fmtDur(agg.P99), fmtDur(agg.Max))
	fmt.Println(t)
	printStageTable(res)
	fmt.Printf("shed(503)=%d throttled(429)=%d breaker_rejected=%d errors=%d dropped=%d faulted(5xx)=%d\n",
		res.shed.Load(), res.throttled.Load(), res.rejected.Load(), res.errs.Load(), res.dropped.Load(), res.faulted.Load())
	refused, total := res.refused()
	fmt.Printf("rejection ratio: %.2f%% (%d of %d completed outcomes refused: 503+429+breaker)\n",
		100*res.rejectionRatio(), refused, total)
}

// printStageTable prints the per-stage latency view assembled from the
// daemon's Server-Timing response headers: where each request's time
// went (queueing, coalescing, co-rank search, merging, writing).
// Partition/merge rows are cumulative worker time, the rest wall time.
func printStageTable(res *result) {
	if len(res.perStage) == 0 {
		return
	}
	t := harness.NewTable("per-stage spans (from Server-Timing)",
		"stage", "count", "p50", "p95", "p99", "max")
	order := server.StageNames()
	for stage := range res.perStage {
		known := false
		for _, s := range order {
			if s == stage {
				known = true
				break
			}
		}
		if !known {
			order = append(order, stage)
		}
	}
	for _, stage := range order {
		h, ok := res.perStage[stage]
		if !ok {
			continue
		}
		s := h.Snapshot()
		t.Addf(stage, s.Count, fmtDur(s.P50), fmtDur(s.P95), fmtDur(s.P99), fmtDur(s.Max))
	}
	fmt.Println(t)
}

// benchDoc is the BENCH_server.json schema; keep fields append-only so
// future PRs can diff runs.
type benchDoc struct {
	Config struct {
		Mode     string  `json:"mode"`
		Rate     float64 `json:"rate_rps,omitempty"`
		Conc     int     `json:"conc"`
		Endpoint string  `json:"endpoint"`
		Size     int     `json:"size"`
		Dist     string  `json:"dist"`
		Duration string  `json:"duration"`
		Workers  int     `json:"workers,omitempty"`
		// Target is what tier the run drove, from /healthz's role field:
		// "node" (mergepathd) or "router" (mergerouter). Runs against
		// different tiers must not be compared as if same-machine.
		Target string `json:"target"`
	} `json:"config"`
	Totals struct {
		OK          int64   `json:"ok"`
		Shed        int64   `json:"shed_503"`
		Throttled   int64   `json:"throttled_429"`
		Rejected    int64   `json:"breaker_rejected,omitempty"`
		Errors      int64   `json:"errors"`
		Dropped     int64   `json:"dropped"`
		Throughput  float64 `json:"req_per_s"`
		ElemPerSec  float64 `json:"elem_per_s"`
		ElapsedSecs float64 `json:"elapsed_s"`
		// RejectionRatio is refused outcomes (503 + 429 + breaker
		// rejects) over all completed outcomes.
		RejectionRatio float64 `json:"rejection_ratio"`
	} `json:"totals"`
	Latency     stats.HistogramSnapshot            `json:"latency"`
	PerEndpoint map[string]stats.HistogramSnapshot `json:"per_endpoint"`
	// Stages aggregates the daemon's per-request Server-Timing spans
	// observed by the client: where request time went, by lifecycle
	// stage.
	Stages map[string]stats.HistogramSnapshot `json:"stages,omitempty"`
	// Imbalance echoes the server's last-round per-worker load summary;
	// ImbalanceMax/Mean are its running per-round aggregates. Theorem 5
	// predicts ~1.0 for uncoalesced whole-pool rounds.
	Imbalance     *stats.LoadSummary `json:"last_round_imbalance,omitempty"`
	ImbalanceMax  float64            `json:"imbalance_max,omitempty"`
	ImbalanceMean float64            `json:"imbalance_mean,omitempty"`
	// Client reports the resilient client's retry/hedge/breaker counters
	// when -resilient drove the run.
	Client *resilience.Stats `json:"client,omitempty"`
	// OverloadTimeline is the server's degradation-state transitions
	// observed over the measured run (polled from /healthz).
	OverloadTimeline []stateChange   `json:"overload_timeline,omitempty"`
	ServerMetrics    json.RawMessage `json:"server_metrics,omitempty"`
	// Jobs is the -jobs mode section: out-of-core sortfile jobs with
	// per-phase timings (queue wait, copy-in, run formation, merge).
	Jobs *jobsBenchDoc `json:"jobs,omitempty"`
	// Wire is the -wire section: JSON vs binary-frame decode cost on
	// large merges, measured against a dedicated in-process daemon.
	Wire *wireBenchDoc `json:"wire,omitempty"`
}

func writeJSON(o options, res *result, base string, client *http.Client, snap *server.MetricsSnapshot, rclient *resilience.Client, tl *stateTimeline, target string, wdoc *wireBenchDoc) {
	var doc benchDoc
	doc.Wire = wdoc
	doc.Config.Target = target
	doc.Config.Mode = "closed"
	if o.rate > 0 {
		doc.Config.Mode = "open"
		doc.Config.Rate = o.rate
	}
	doc.Config.Conc = o.conc
	doc.Config.Endpoint = o.endpoint
	doc.Config.Size = o.size
	doc.Config.Dist = o.dist
	doc.Config.Duration = o.duration.String()
	doc.Totals.OK = res.ok.Load()
	doc.Totals.Shed = res.shed.Load()
	doc.Totals.Throttled = res.throttled.Load()
	doc.Totals.Rejected = res.rejected.Load()
	doc.Totals.Errors = res.errs.Load()
	doc.Totals.Dropped = res.dropped.Load()
	doc.Totals.RejectionRatio = res.rejectionRatio()
	doc.Totals.ElapsedSecs = res.elapsed.Seconds()
	if doc.Totals.ElapsedSecs > 0 {
		doc.Totals.Throughput = float64(doc.Totals.OK) / doc.Totals.ElapsedSecs
		doc.Totals.ElemPerSec = float64(res.elems.Load()) / doc.Totals.ElapsedSecs
	}
	doc.Latency = res.latency.Snapshot()
	doc.PerEndpoint = map[string]stats.HistogramSnapshot{}
	for path, h := range res.perEndpoint {
		doc.PerEndpoint[path] = h.Snapshot()
	}
	if len(res.perStage) > 0 {
		doc.Stages = map[string]stats.HistogramSnapshot{}
		for stage, h := range res.perStage {
			doc.Stages[stage] = h.Snapshot()
		}
	}
	if snap != nil {
		lr := snap.Pool.LastRound
		doc.Imbalance = &lr
		doc.ImbalanceMax = snap.Pool.ImbalanceMax
		doc.ImbalanceMean = snap.Pool.ImbalanceMean
	}
	if rclient != nil {
		st := rclient.StatsSnapshot()
		doc.Client = &st
	}
	doc.OverloadTimeline = tl.snapshot()
	// Attach the server's own view of the run when reachable.
	if resp, err := client.Get(base + "/metrics"); err == nil {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		doc.ServerMetrics = raw
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatalf("marshal results: %v", err)
	}
	if err := os.WriteFile(o.jsonPath, append(buf, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", o.jsonPath, err)
	}
	fmt.Printf("wrote %s\n", o.jsonPath)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mergeload: "+format+"\n", args...)
	os.Exit(1)
}
