package main

// The -wire comparison: the same large merges driven twice — once as
// JSON documents, once as binary frames — against a dedicated
// in-process daemon, reading the server-side decode/write spans off
// Server-Timing. A dedicated daemon (default overload config, body cap
// sized to the workload) keeps the measurement clean: the main run's
// deliberately-overdriven controller must not shed the comparison's
// requests, and identical input arrays behind both encodings make the
// decode columns directly comparable.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	"mergepath/internal/harness"
	"mergepath/internal/server"
	"mergepath/internal/stats"
	"mergepath/internal/wire"
)

// wireCompareConc is the comparison's closed-loop concurrency: enough
// to keep the daemon busy, low enough that queueing does not smear the
// per-request decode spans being compared.
const wireCompareConc = 4

// wireFormatDoc is one format's half of the comparison.
type wireFormatDoc struct {
	// OK counts 200s in the measured window.
	OK int64 `json:"ok"`
	// ReqPerSec is OK over the measured window.
	ReqPerSec float64 `json:"req_per_s"`
	// BodyBytes is one request body's size in this format.
	BodyBytes int `json:"body_bytes"`
	// Latency is client-observed end-to-end latency.
	Latency stats.HistogramSnapshot `json:"latency"`
	// Decode is the server's decode span (body read + parse for JSON,
	// frame validation + arena copy for binary). The write span never
	// reaches the client — Server-Timing is emitted before the body is
	// written — so response-encoding cost shows up in Latency only.
	Decode stats.HistogramSnapshot `json:"decode"`
}

// wireBenchDoc is the -wire section of BENCH_server.json.
type wireBenchDoc struct {
	// Elements is the total element count per merge request.
	Elements int `json:"elements"`
	// Conc is the comparison's closed-loop concurrency.
	Conc int `json:"conc"`
	// Duration is each format's measured window.
	Duration string `json:"duration"`
	// JSON and Binary are the two formats' results.
	JSON   wireFormatDoc `json:"json"`
	Binary wireFormatDoc `json:"binary"`
	// DecodeP99Ratio is binary decode p99 over JSON decode p99 — the
	// headline number; the wire protocol exists to push this far below
	// 1.
	DecodeP99Ratio float64 `json:"decode_p99_ratio"`
}

// buildWirePairs pre-encodes the comparison workload: the same sorted
// arrays behind both encodings, a few distinct bodies so the server's
// routing/caching can't latch onto one payload.
func buildWirePairs(o options) (jsonReqs, binReqs []canned) {
	rng := rand.New(rand.NewSource(o.seed))
	half := o.wireSize / 2
	if half < 1 {
		half = 1
	}
	sorted := func(n int) []int64 {
		s := make([]int64, n)
		v := int64(0)
		for i := range s {
			v += rng.Int63n(8)
			s[i] = v
		}
		return s
	}
	for i := 0; i < 4; i++ {
		a, b := sorted(half), sorted(half)
		jb, err := json.Marshal(server.MergeRequest{A: a, B: b})
		if err != nil {
			fatalf("wire compare: marshal: %v", err)
		}
		jsonReqs = append(jsonReqs, canned{path: "/v1/merge", body: jb, elems: 2 * half})
		binReqs = append(binReqs, canned{
			path:  "/v1/merge",
			body:  wire.AppendInt64(nil, a, b),
			ctype: wire.ContentType,
			elems: 2 * half,
		})
	}
	return jsonReqs, binReqs
}

// runWireCompare measures both formats against a fresh in-process
// daemon and returns the comparison document.
func runWireCompare(o options) *wireBenchDoc {
	jsonReqs, binReqs := buildWirePairs(o)

	// Body cap: the JSON encoding of the workload plus headroom (the
	// binary frame is always smaller).
	need := int64(len(jsonReqs[0].body)) * 2
	if need < o.maxBody {
		need = o.maxBody
	}
	srv := server.New(server.Config{Workers: o.workers, MaxBodyBytes: need})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(dctx)
	}()

	co := o
	co.conc, co.rate, co.chaos = wireCompareConc, 0, false
	client := &http.Client{Timeout: 30 * time.Second}
	fmt.Printf("wire compare: %d elements/request, conc=%d, %v per format (json body %d bytes, frame %d bytes)\n",
		o.wireSize, co.conc, o.duration, len(jsonReqs[0].body), len(binReqs[0].body))

	measure := func(reqs []canned) *result {
		run(ts.URL, client, nil, reqs, o.warmup, co, nil)
		return run(ts.URL, client, nil, reqs, o.duration, co, nil)
	}
	resJSON := measure(jsonReqs)
	resBin := measure(binReqs)

	doc := &wireBenchDoc{
		Elements: o.wireSize,
		Conc:     co.conc,
		Duration: o.duration.String(),
		JSON:     formatDoc(resJSON, len(jsonReqs[0].body)),
		Binary:   formatDoc(resBin, len(binReqs[0].body)),
	}
	if p99 := doc.JSON.Decode.P99; p99 > 0 {
		doc.DecodeP99Ratio = float64(doc.Binary.Decode.P99) / float64(p99)
	}
	printWireTable(doc)
	return doc
}

// formatDoc folds one format's run into its half of the document.
func formatDoc(res *result, bodyBytes int) wireFormatDoc {
	d := wireFormatDoc{
		OK:        res.ok.Load(),
		BodyBytes: bodyBytes,
		Latency:   res.latency.Snapshot(),
	}
	if secs := res.elapsed.Seconds(); secs > 0 {
		d.ReqPerSec = float64(d.OK) / secs
	}
	if h, ok := res.perStage[server.StageDecode]; ok {
		d.Decode = h.Snapshot()
	}
	return d
}

func printWireTable(doc *wireBenchDoc) {
	t := harness.NewTable(
		fmt.Sprintf("wire compare: /v1/merge, %d elements/request", doc.Elements),
		"format", "ok", "req/s", "body", "decode p50", "decode p99", "e2e p50", "e2e p99")
	for _, row := range []struct {
		name string
		d    wireFormatDoc
	}{{"json", doc.JSON}, {"binary", doc.Binary}} {
		t.Addf(row.name, row.d.OK, fmt.Sprintf("%.0f", row.d.ReqPerSec),
			fmt.Sprintf("%.1fMB", float64(row.d.BodyBytes)/(1<<20)),
			fmtDur(row.d.Decode.P50), fmtDur(row.d.Decode.P99),
			fmtDur(row.d.Latency.P50), fmtDur(row.d.Latency.P99))
	}
	fmt.Println(t)
	fmt.Printf("wire compare: binary decode p99 is %.3fx json's\n", doc.DecodeP99Ratio)
}
