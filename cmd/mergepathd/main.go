// Command mergepathd is the merge-path service daemon: an HTTP/JSON
// server multiplexing concurrent merge/sort/k-way/set-algebra requests
// onto one fixed worker pool with coalesced, globally load-balanced
// batch rounds (see internal/server).
//
// Endpoints: POST /v1/merge /v1/sort /v1/mergek /v1/setops /v1/select;
// the out-of-core dataset/jobs API POST /v1/datasets, POST /v1/jobs,
// GET/DELETE /v1/jobs/{id}, GET /v1/jobs/{id}/result; GET /healthz
// /metrics /metrics/prom. See docs/METRICS.md for the full metric
// reference and README.md for the operator runbook.
//
// Usage:
//
//	mergepathd -addr :8080 -workers 8 -queue 256
//	mergepathd -debug-addr localhost:6060          # pprof sidecar
//	mergepathd -access-log                         # per-request span log
//	mergepathd -fault 'sort:panic=0.05;*:latency=1ms@0.2'   # chaos mode
//	mergepathd -overload-target 10ms -strict-input          # tuning + forensic 400s
//	mergepathd -spill-dir /var/tmp/mp -job-memory 1048576   # out-of-core sort jobs
//	curl -s localhost:8080/v1/merge -d '{"a":[1,3],"b":[2,4]}'
//	curl -s localhost:8080/metrics/prom
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops, queued
// and in-flight work completes, then the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mergepath/internal/fault"
	"mergepath/internal/jobs"
	"mergepath/internal/kway"
	"mergepath/internal/overload"
	"mergepath/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 256, "admission queue depth (full queue sheds with 503)")
		window    = flag.Duration("batch-window", 500*time.Microsecond, "coalescing window for small merges")
		coalesce  = flag.Int("coalesce", 1<<16, "max output elements for the coalescing path")
		maxBody   = flag.Int64("max-body", 8<<20, "request body limit in bytes (413 beyond)")
		timeout   = flag.Duration("timeout", 5*time.Second, "default per-request deadline")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
		faultSpec = flag.String("fault", "", `fault injection spec, e.g. "merge:panic=0.01;*:latency=1ms@0.1" (chaos testing; empty = off)`)
		faultSeed = flag.Int64("fault-seed", 1, "fault injection RNG seed")
		debugAddr = flag.String("debug-addr", "", "listen address for the pprof debug server (empty = off); serves /debug/pprof/ only, keep it off public interfaces")
		accessLog = flag.Bool("access-log", false, "log one structured line per request with its ID and per-stage span timings")

		overloadTarget   = flag.Duration("overload-target", 5*time.Millisecond, "CoDel queue-sojourn target; sustained waits above it degrade, then shed with 429")
		overloadInterval = flag.Duration("overload-interval", 100*time.Millisecond, "overload evaluation interval (the window the minimum sojourn is tracked over)")
		strictInput      = flag.Bool("strict-input", false, "sortedness 400s name the first violating index and values (forensic mode)")

		spillDir       = flag.String("spill-dir", "", "spill directory for datasets and job files (empty = a private temp dir, removed on exit)")
		jobMemory      = flag.Int("job-memory", 1<<20, "per-job in-memory budget in records: the external sort's M")
		jobConcurrency = flag.Int("job-concurrency", 1, "max jobs executing at once")
		jobQueue       = flag.Int("job-queue", 8, "max jobs waiting to run (full queue sheds with 503)")
		jobTTL         = flag.Duration("job-ttl", 10*time.Minute, "TTL for finished job state/results and idle datasets")
		jobFanIn       = flag.Int("job-fan-in", 0, "external-sort merge fan-in (0 = engine default)")
		journal        = flag.Bool("journal", true, "write-ahead manifest journal under -spill-dir for crash recovery (ignored without -spill-dir; docs/DURABILITY.md)")
		fsyncPolicy    = flag.String("fsync-policy", "state", "when to fsync journal and spill files: always, state or never (docs/DURABILITY.md)")

		kwayStrategy = flag.String("kway-strategy", "auto", "k-way merge strategy for /v1/mergek and job fan-in: auto, heap, tree or corank (docs/KWAY.md)")
	)
	flag.Parse()

	kstrat, err := kway.ParseStrategy(*kwayStrategy)
	if err != nil {
		log.Fatalf("-kway-strategy: %v", err)
	}
	fsync, err := jobs.ParseFsyncPolicy(*fsyncPolicy)
	if err != nil {
		log.Fatalf("-fsync-policy: %v", err)
	}

	var inj *fault.Injector
	if *faultSpec != "" {
		var err error
		inj, err = fault.Parse(*faultSpec, *faultSeed)
		if err != nil {
			log.Fatalf("-fault: %v", err)
		}
		log.Printf("CHAOS MODE: fault injection active (%s)", *faultSpec)
	}

	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchWindow:    *window,
		CoalesceLimit:  *coalesce,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		Overload: overload.Config{
			Target:   *overloadTarget,
			Interval: *overloadInterval,
		},
		StrictInput:  *strictInput,
		Fault:        inj,
		AccessLog:    *accessLog,
		KWayStrategy: kstrat,
		Jobs: jobs.Config{
			Dir:            *spillDir,
			MemoryRecords:  *jobMemory,
			MaxConcurrent:  *jobConcurrency,
			MaxQueued:      *jobQueue,
			TTL:            *jobTTL,
			FanIn:          *jobFanIn,
			KWay:           kstrat,
			DisableJournal: !*journal,
			Fsync:          fsync,
		},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s}

	// The pprof sidecar lives on its own listener so profiling can stay
	// bound to localhost while the service listens publicly. Handlers
	// are mounted on a private mux — never the service mux, never
	// http.DefaultServeMux — so no deployment accidentally exposes it.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("debug server (pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dmux); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	journalState := "off"
	if *spillDir != "" && *journal {
		journalState = "on"
	}
	log.Printf("mergepathd listening on %s (workers=%d queue=%d spill=%s job-memory=%d journal=%s fsync=%s)",
		*addr, s.Workers(), *queue, s.Jobs().Dir(), s.Jobs().MemoryRecords(), journalState, fsync)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (budget %v)", *drainFor)
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Drain(dctx); err != nil {
		log.Printf("pool drain: %v", err)
	}
	// Final metrics summary so operators see what the run served.
	snap := s.Snapshot()
	buf, _ := json.Marshal(snap)
	fmt.Fprintf(os.Stderr, "mergepathd: drained cleanly; final metrics: %s\n", buf)
}
