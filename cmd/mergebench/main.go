// Command mergebench regenerates the paper's merge evaluation: Figure 5
// (speedup vs threads per input size), the §VI single-thread overhead
// remark, the Theorem 14 partition-cost check, the E4 load-balance
// comparison, the §V related-work comparison, and the SPM window ablation.
//
// Usage:
//
//	mergebench -experiment fig5 -sizes 1M,4M,16M -threads 1,2,4,6,8,10,12 -reps 5
//	mergebench -experiment all
//
// Sizes accept K/M suffixes and count elements per input array (the output
// is twice that, as in the paper: total memory = 4*|A|*sizeof(elem)).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mergepath/internal/cliutil"
	"mergepath/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all",
			"one of: fig5, fig5sim, overhead, partition, balance, related, window, kway, hierarchical, networks, setops, all")
		sizes   = flag.String("sizes", "1M,4M", "per-array element counts, K/M suffixes allowed")
		threads = flag.String("threads", "1,2,4,6,8,10,12", "worker counts")
		reps    = flag.Int("reps", 5, "timed repetitions (median reported)")
		warmup  = flag.Int("warmup", 1, "warmup runs")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	opt := harness.Options{Reps: *reps, Warmup: *warmup, Seed: *seed}
	var err error
	if opt.Sizes, err = cliutil.ParseSizes(*sizes); err != nil {
		fatal(err)
	}
	if opt.Threads, err = cliutil.ParsePositiveInts(*threads); err != nil {
		fatal(err)
	}

	experiments := map[string]func(harness.Options) *harness.Table{
		"fig5":         harness.Fig5,
		"fig5sim":      harness.Fig5Simulated,
		"overhead":     harness.Overhead,
		"partition":    harness.PartitionCost,
		"balance":      harness.LoadBalance,
		"related":      harness.RelatedWork,
		"window":       harness.WindowSweep,
		"kway":         harness.KWay,
		"hierarchical": harness.Hierarchical,
		"networks":     harness.SortNetworks,
		"setops":       harness.SetOps,
	}
	order := []string{"fig5", "fig5sim", "overhead", "partition", "balance", "related", "window", "kway", "hierarchical", "networks", "setops"}

	switch *experiment {
	case "all":
		for _, name := range order {
			fmt.Println(experiments[name](opt))
		}
	default:
		f, ok := experiments[*experiment]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want one of %s, all)",
				*experiment, strings.Join(order, ", ")))
		}
		fmt.Println(f(opt))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mergebench:", err)
	os.Exit(1)
}
