// Command lintdocs audits Go packages for undocumented exported
// identifiers: every exported top-level const, var, type, func, method,
// and every exported field of an exported struct must carry a doc
// comment. It is the enforcement half of the repo's documentation
// policy (`make lint-docs`, part of `make verify`) — godoc coverage
// regresses silently without a gate, and a service layer is operated by
// people reading exactly those comments.
//
// Usage:
//
//	lintdocs ./internal/server ./internal/core ./internal/batch ./internal/stats
//
// Exits nonzero listing each gap as file:line: identifier. Only the
// standard library is used (go/parser + go/ast), so the tool adds no
// module dependencies.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lintdocs <pkg-dir> [...]\naudits exported identifiers for missing doc comments\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var gaps []string
	for _, dir := range flag.Args() {
		g, err := auditDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdocs: %v\n", err)
			os.Exit(2)
		}
		gaps = append(gaps, g...)
	}
	if len(gaps) > 0 {
		for _, g := range gaps {
			fmt.Println(g)
		}
		fmt.Fprintf(os.Stderr, "lintdocs: %d undocumented exported identifier(s)\n", len(gaps))
		os.Exit(1)
	}
}

// auditDir parses every non-test .go file in dir and returns one
// "file:line: kind name lacks a doc comment" string per gap.
func auditDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	var gaps []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		gaps = append(gaps, fmt.Sprintf("%s:%d: %s %s lacks a doc comment",
			filepath.ToSlash(p.Filename), p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			auditFile(file, report)
		}
	}
	return gaps, nil
}

// auditFile walks one file's top-level declarations.
func auditFile(file *ast.File, report func(token.Pos, string, string)) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				kind := "func"
				if d.Recv != nil {
					kind = "method"
				}
				report(d.Pos(), kind, funcName(d))
			}
		case *ast.GenDecl:
			auditGenDecl(d, report)
		}
	}
}

// auditGenDecl handles const/var/type blocks. Per godoc convention a
// doc comment on the decl group covers all its specs, and inside a
// grouped const/var block an undocumented spec inherits the block doc;
// individually exported type specs still need their own comment when
// the block has none.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), d.Tok.String(), name.Name)
				}
			}
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if d.Doc == nil && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok {
				auditFields(s.Name.Name, st, report)
			}
		}
	}
}

// auditFields checks exported fields of an exported struct type.
func auditFields(typeName string, st *ast.StructType, report func(token.Pos, string, string)) {
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			if !name.IsExported() {
				continue
			}
			if f.Doc == nil && f.Comment == nil {
				report(name.Pos(), "field", typeName+"."+name.Name)
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is
// exported; methods on unexported types are not part of the godoc
// surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[E]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv) Name" for reports.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	var recv string
	switch x := t.(type) {
	case *ast.StarExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			recv = "*" + id.Name
		}
	case *ast.Ident:
		recv = x.Name
	}
	if recv == "" {
		return d.Name.Name
	}
	return "(" + recv + ") " + d.Name.Name
}
