// Command sortbench regenerates the sorting-side experiments: E7 (the
// parallel merge sort speedup ladder of §III) and the external-sort
// extension (block I/O on a simulated device).
//
// Usage:
//
//	sortbench -sizes 1M,4M -threads 1,2,4,6,8,10,12 -reps 5
//	sortbench -experiment external
package main

import (
	"flag"
	"fmt"
	"os"

	"mergepath/internal/cliutil"
	"mergepath/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "speedup", "one of: speedup, external, all")
		sizes      = flag.String("sizes", "1M,4M", "element counts, K/M suffixes allowed")
		threads    = flag.String("threads", "1,2,4,6,8,10,12", "worker counts")
		reps       = flag.Int("reps", 5, "timed repetitions (median reported)")
		warmup     = flag.Int("warmup", 1, "warmup runs")
		seed       = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	opt := harness.Options{Reps: *reps, Warmup: *warmup, Seed: *seed}
	var err error
	if opt.Sizes, err = cliutil.ParseSizes(*sizes); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
	if opt.Threads, err = cliutil.ParsePositiveInts(*threads); err != nil {
		fmt.Fprintln(os.Stderr, "sortbench:", err)
		os.Exit(1)
	}
	switch *experiment {
	case "speedup":
		fmt.Println(harness.SortSpeedup(opt))
	case "external":
		fmt.Println(harness.ExternalSortIO(opt))
	case "all":
		fmt.Println(harness.SortSpeedup(opt))
		fmt.Println(harness.ExternalSortIO(opt))
	default:
		fmt.Fprintf(os.Stderr, "sortbench: unknown experiment %q\n", *experiment)
		os.Exit(1)
	}
}
