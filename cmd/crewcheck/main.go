// Command crewcheck audits Algorithm 1 on the CREW-PRAM machine model
// (experiment E10): it runs the instrumented parallel merge across
// processor counts and workloads, then reports CREW conformance, the
// concurrent-read fraction (the paper claims such reads are rare), the
// per-processor load spread (Corollary 7), and total work vs the
// O(N + p·logN) bound.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mergepath/internal/harness"
	"mergepath/internal/pram"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

func main() {
	var (
		elements = flag.Int("elements", 1<<16, "elements per input array (the audit records every access)")
		seed     = flag.Int64("seed", 11, "workload seed")
	)
	flag.Parse()

	t := harness.NewTable("E10 — CREW-PRAM audit of Algorithm 1",
		"workload", "p", "CREW", "correct", "concurrent-read frac", "op spread (max-min)", "total ops", "3N + 2p·log bound")
	violations := 0
	for _, kind := range workload.Kinds() {
		for _, p := range []int{2, 4, 8} {
			av, bv := workload.Pair(kind, *elements, *elements, *seed)
			m := pram.NewMachine(p)
			res := pram.ParallelMerge(m, m.NewArray(av), m.NewArray(bv))
			crew := res.Report.CREW()
			if !crew {
				violations += len(res.Report.Violations)
			}
			correct := verify.Equal(res.Out.Snapshot(), verify.ReferenceMerge(av, bv))
			total := 0
			for proc := 0; proc < p; proc++ {
				total += res.Report.TotalOps(proc)
			}
			n := 2 * *elements
			bound := 3*n + p*2*(int(math.Log2(float64(*elements)))+1)
			t.Addf(string(kind), p, crew, correct,
				fmt.Sprintf("%.5f", res.Report.ConcurrentReadFraction()),
				res.Report.MaxOps()-res.Report.MinOps(), total, bound)
		}
	}
	fmt.Println(t)
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "crewcheck: %d CREW violations detected\n", violations)
		os.Exit(1)
	}
	fmt.Println("CREW conformance: PASS (no concurrent writes, no read/write races)")
}
