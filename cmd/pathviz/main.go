// Command pathviz draws the merge matrix and merge path of two small
// sorted arrays — the paper's Figures 1 and 2 in ASCII. Useful for
// building intuition and for demonstrations.
//
// Usage:
//
//	pathviz                             # the paper-style demo inputs
//	pathviz -a 1,3,5,7 -b 2,4,6 -p 3    # your own arrays, 3-way partition
//	pathviz -n 12 -p 4 -seed 7          # random sorted arrays of length 12
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mergepath/internal/core"
	"mergepath/internal/viz"
	"mergepath/internal/workload"
)

func main() {
	var (
		aFlag = flag.String("a", "", "comma-separated sorted values for A")
		bFlag = flag.String("b", "", "comma-separated sorted values for B")
		n     = flag.Int("n", 8, "random array length when -a/-b are not given")
		p     = flag.Int("p", 4, "number of partitions to mark on the path")
		seed  = flag.Int64("seed", 3, "seed for random arrays")
	)
	flag.Parse()

	var a, b []int32
	if *aFlag != "" || *bFlag != "" {
		var err error
		if a, err = parseList(*aFlag); err != nil {
			fatal(err)
		}
		if b, err = parseList(*bFlag); err != nil {
			fatal(err)
		}
	} else {
		a, b = workload.Pair(workload.Uniform, *n, *n, *seed)
		for i := range a {
			a[i] %= 100
		}
		for i := range b {
			b[i] %= 100
		}
		sortInPlace(a)
		sortInPlace(b)
	}
	if !sorted(a) || !sorted(b) {
		fatal(fmt.Errorf("inputs must be sorted"))
	}

	fmt.Printf("A = %v\nB = %v\n\n", a, b)
	fmt.Println("Merge matrix M[i][j] = (A[i] > B[j])   (Definition 1):")
	fmt.Println(viz.Matrix(a, b))
	fmt.Printf("Merge path (down = consume A, right = consume B), %d partitions:\n", *p)
	fmt.Println(viz.Path(a, b, *p))

	out := make([]int32, len(a)+len(b))
	core.ParallelMerge(a, b, out, max(*p, 1))
	fmt.Printf("merged: %v\n", out)
	if *p > 1 {
		fmt.Println("\npartition boundaries (worker i starts at cut i):")
		bounds := core.Partition(a, b, *p)
		for i := 1; i < *p; i++ {
			fmt.Printf("  cut %d: diagonal %d -> %d from A, %d from B\n",
				i, bounds[i].Diagonal(), bounds[i].A, bounds[i].B)
		}
	}
}

func parseList(s string) ([]int32, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int32, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, int32(v))
	}
	return out, nil
}

func sorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func sortInPlace(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pathviz:", err)
	os.Exit(1)
}
