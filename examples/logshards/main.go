// logshards: reassembling one globally ordered event log from per-shard
// logs. Each shard emits events ordered by timestamp; the merger must be
// stable (events with equal timestamps keep shard order, and per-shard
// order is never violated). This exercises the comparison-function API
// (ParallelMergeFunc) on a struct element type.
package main

import (
	"fmt"
	"math/rand"
	"runtime"

	"mergepath/internal/core"
)

// Event is one log record.
type Event struct {
	TS    uint64 // millisecond timestamp
	Shard int
	Seq   int // per-shard sequence number
}

func eventBefore(x, y Event) bool { return x.TS < y.TS }

func main() {
	const shards = 8
	const perShard = 200_000
	p := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(2026))

	logs := make([][]Event, shards)
	for s := range logs {
		logs[s] = make([]Event, perShard)
		ts := uint64(0)
		for i := range logs[s] {
			ts += uint64(rng.Intn(5)) // bursts: many equal timestamps
			logs[s][i] = Event{TS: ts, Shard: s, Seq: i}
		}
	}

	// Pairwise tree of stable parallel merges over the Func API.
	round := logs
	for len(round) > 1 {
		var next [][]Event
		for i := 0; i+1 < len(round); i += 2 {
			a, b := round[i], round[i+1]
			out := make([]Event, len(a)+len(b))
			core.ParallelMergeFunc(a, b, out, p, eventBefore)
			next = append(next, out)
		}
		if len(round)%2 == 1 {
			next = append(next, round[len(round)-1])
		}
		round = next
	}
	merged := round[0]

	// Validate global order and per-shard stability.
	lastSeq := make([]int, shards)
	for s := range lastSeq {
		lastSeq[s] = -1
	}
	for i, e := range merged {
		if i > 0 && merged[i-1].TS > e.TS {
			panic(fmt.Sprintf("time went backwards at %d", i))
		}
		if lastSeq[e.Shard] >= e.Seq {
			panic(fmt.Sprintf("shard %d order violated at %d", e.Shard, i))
		}
		lastSeq[e.Shard] = e.Seq
	}
	fmt.Printf("merged %d events from %d shards with %d workers\n", len(merged), shards, p)
	fmt.Printf("global order: OK; per-shard order preserved: OK\n")
	fmt.Printf("first event: shard %d seq %d @%dms; last: @%dms\n",
		merged[0].Shard, merged[0].Seq, merged[0].TS, merged[len(merged)-1].TS)
}
