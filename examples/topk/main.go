// topk: the diagonal search as a standalone selection primitive. Given two
// sorted arrays (say, two replicas' latency histograms, or two index
// postings lists with sorted scores), SearchRank finds the k-th smallest of
// their union — medians, percentiles, top-k thresholds — in O(log min)
// time, without merging anything.
package main

import (
	"fmt"
	"math/rand"

	"mergepath/internal/core"
	"mergepath/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	// Two services' sorted latency samples (microseconds).
	east := workload.SortedUniform(rng, 1_000_000, 20_000)
	west := workload.SortedUniform(rng, 600_000, 35_000)
	total := len(east) + len(west)

	fmt.Printf("union of %d + %d sorted samples (never materialized)\n", len(east), len(west))
	for _, q := range []float64{0.50, 0.90, 0.99, 0.999} {
		k := int(q * float64(total))
		pt := core.SearchRank(east, west, k)
		// The k-th smallest is the smaller next element at the split.
		v := valueAt(east, west, pt)
		fmt.Printf("  p%-5g = %6dus   (east contributes %d samples, west %d)\n",
			q*100, v, pt.A, pt.B)
	}

	// Cross-check the median against a real merge.
	k := total / 2
	pt := core.SearchRank(east, west, k)
	merged := make([]int, total)
	core.Merge(east, west, merged)
	if got, want := valueAt(east, west, pt), merged[k]; got != want {
		panic(fmt.Sprintf("selection mismatch: %d vs %d", got, want))
	}
	fmt.Println("median cross-checked against full merge: OK")
}

// valueAt returns the element at output rank pt.Diagonal(), i.e. the
// smallest yet-unconsumed element at the split point.
func valueAt(a, b []int, pt core.Point) int {
	switch {
	case pt.A == len(a):
		return b[pt.B]
	case pt.B == len(b):
		return a[pt.A]
	case a[pt.A] <= b[pt.B]:
		return a[pt.A]
	default:
		return b[pt.B]
	}
}
