// externalrun: the external-sort / LSM-compaction scenario the paper's
// introduction motivates. A database produced many sorted runs (too big to
// sort in one pass); we compact them into one sorted file-image using the
// k-way tree of parallel merge-path merges, and compare against the classic
// sequential heap merge.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mergepath/internal/kway"
	"mergepath/internal/workload"
)

func main() {
	const (
		runCount   = 32
		runLength  = 250_000 // records per run
		keyDomain  = 0       // full int32 domain
		totalElems = runCount * runLength
	)
	p := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(99))
	_ = keyDomain

	fmt.Printf("compacting %d sorted runs of %d records each (%d total) with %d workers\n",
		runCount, runLength, totalElems, p)

	runs := make([][]int32, runCount)
	for i := range runs {
		runs[i] = workload.SortedUniform32(rng, runLength)
	}

	start := time.Now()
	merged := kway.Merge(runs, p)
	tree := time.Since(start)

	start = time.Now()
	reference := kway.HeapMerge(runs)
	heap := time.Since(start)

	if len(merged) != totalElems {
		panic("lost records during compaction")
	}
	for i := range merged {
		if merged[i] != reference[i] {
			panic(fmt.Sprintf("divergence at record %d", i))
		}
	}
	fmt.Printf("  merge-path tree: %v  (%.1f M records/s)\n", tree, float64(totalElems)/tree.Seconds()/1e6)
	fmt.Printf("  heap baseline:   %v  (%.1f M records/s)\n", heap, float64(totalElems)/heap.Seconds()/1e6)
	fmt.Printf("  speedup: %.2fx, outputs identical\n", float64(heap)/float64(tree))
}
