// postings: search-engine posting-list algebra on the merge path. Each
// term maps to a sorted list of document IDs; conjunctive queries are
// intersections, disjunctive queries unions, and exclusions differences —
// all parallelized by partitioning the merge path, with the k-th smallest
// selection answering "paginate to result #k" without materializing
// anything.
package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mergepath"
)

func main() {
	p := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(77))
	const docs = 4_000_000

	// Simulated posting lists: term frequency decides density.
	postings := map[string][]uint32{
		"database":   randomDocs(rng, docs, 900_000),
		"parallel":   randomDocs(rng, docs, 700_000),
		"deprecated": randomDocs(rng, docs, 150_000),
		"merge":      randomDocs(rng, docs, 400_000),
	}
	for term, list := range postings {
		fmt.Printf("%-11s %8d docs\n", term, len(list))
	}

	// Query: (database AND parallel AND merge) NOT deprecated.
	start := time.Now()
	hits := mergepath.Intersect(postings["database"], postings["parallel"], p)
	hits = mergepath.Intersect(hits, postings["merge"], p)
	hits = mergepath.Diff(hits, postings["deprecated"], p)
	elapsed := time.Since(start)
	fmt.Printf("\n(database AND parallel AND merge) NOT deprecated -> %d docs in %v\n", len(hits), elapsed)

	// Query: database OR parallel, then "jump to result 1,000,000" via
	// rank selection on the two lists without building the union.
	union := mergepath.Union(postings["database"], postings["parallel"], p)
	fmt.Printf("database OR parallel -> %d docs\n", len(union))
	const page = 1_000_000
	pt := mergepath.SearchDiagonal(postings["database"], postings["parallel"], page)
	fmt.Printf("result #%d reached by skipping %d docs of 'database' and %d of 'parallel' (no union built)\n",
		page, pt.A, pt.B)

	// Sanity: selection agrees with the materialized merged rank. (The
	// merged sequence counts duplicates from both lists; the union
	// deduplicates, so compare against the raw merge.)
	merged := make([]uint32, len(postings["database"])+len(postings["parallel"]))
	mergepath.ParallelMerge(postings["database"], postings["parallel"], merged, p)
	probe := merged[page]
	var viaSel uint32
	switch {
	case pt.A == len(postings["database"]):
		viaSel = postings["parallel"][pt.B]
	case pt.B == len(postings["parallel"]):
		viaSel = postings["database"][pt.A]
	case postings["database"][pt.A] <= postings["parallel"][pt.B]:
		viaSel = postings["database"][pt.A]
	default:
		viaSel = postings["parallel"][pt.B]
	}
	if probe != viaSel {
		panic("selection disagrees with merge")
	}
	fmt.Println("rank selection cross-checked against full merge: OK")
}

// randomDocs returns n distinct sorted document IDs drawn from [0, docs).
func randomDocs(rng *rand.Rand, docs, n int) []uint32 {
	seen := make(map[uint32]bool, n)
	out := make([]uint32, 0, n)
	for len(out) < n {
		id := uint32(rng.Intn(docs))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	// Insertion sort would be quadratic here; use the library itself.
	mergepath.Sort(out, runtime.GOMAXPROCS(0))
	return out
}
