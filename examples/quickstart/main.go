// Quickstart: the three core operations of the library in ~60 lines —
// partition a merge, merge in parallel, and sort in parallel.
package main

import (
	"fmt"
	"math/rand"
	"runtime"

	"mergepath/internal/core"
	"mergepath/internal/psort"
	"mergepath/internal/workload"
)

func main() {
	p := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(1))

	// Two sorted inputs.
	a := workload.SortedUniform32(rng, 1_000_000)
	b := workload.SortedUniform32(rng, 1_500_000)

	// 1. Partition: where would p workers split this merge? Each boundary
	// is found with a ~log2(min(|a|,|b|)) binary search; no data moves.
	bounds := core.Partition(a, b, p)
	fmt.Printf("merge of %d+%d elements split for %d workers:\n", len(a), len(b), p)
	for i := 0; i+1 < len(bounds); i++ {
		fmt.Printf("  worker %2d: a[%d:%d] + b[%d:%d] -> out[%d:%d]\n",
			i, bounds[i].A, bounds[i+1].A, bounds[i].B, bounds[i+1].B,
			bounds[i].Diagonal(), bounds[i+1].Diagonal())
	}

	// 2. Merge in parallel. Lock-free: every worker owns a disjoint slice
	// of out.
	out := make([]int32, len(a)+len(b))
	core.ParallelMerge(a, b, out, p)
	fmt.Printf("merged: out[0]=%d ... out[%d]=%d, sorted=%v\n",
		out[0], len(out)-1, out[len(out)-1], isSorted(out))

	// 3. Parallel merge sort built on the same primitive.
	data := workload.Unsorted(rng, 2_000_000)
	psort.Sort(data, p)
	fmt.Printf("sorted %d elements with %d workers, sorted=%v\n", len(data), p, isSorted(data))
}

func isSorted(s []int32) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}
