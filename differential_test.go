package mergepath_test

import (
	"fmt"
	"math/rand"
	"testing"

	"mergepath"
	"mergepath/internal/baseline"
	"mergepath/internal/bitonic"
	"mergepath/internal/core"
	"mergepath/internal/spm"
	"mergepath/internal/verify"
	"mergepath/internal/workload"
)

// TestDifferentialMergers runs every merge implementation in the
// repository over the full workload grid and checks they all produce the
// byte-identical stable merge — the single table that catches a divergence
// anywhere in the family.
func TestDifferentialMergers(t *testing.T) {
	type merger struct {
		name string
		run  func(a, b, out []int32, p int)
	}
	mergers := []merger{
		{"core.Merge", func(a, b, out []int32, p int) { core.Merge(a, b, out) }},
		{"core.MergeBranchFree", func(a, b, out []int32, p int) { core.MergeBranchFree(a, b, out) }},
		{"core.ParallelMerge", core.ParallelMerge[int32]},
		{"core.Hierarchical", func(a, b, out []int32, p int) {
			core.HierarchicalMerge(a, b, out, core.HierarchicalConfig{Blocks: max(p/2, 1), TeamSize: 2})
		}},
		{"spm.Merge", func(a, b, out []int32, p int) {
			spm.Merge(a, b, out, spm.Config{Window: 64, Workers: p})
		}},
		{"baseline.Sequential", func(a, b, out []int32, p int) { baseline.SequentialMerge(a, b, out) }},
		{"baseline.AklSantoro", baseline.AklSantoroMerge[int32]},
		{"baseline.DeoSarkar", baseline.DeoSarkarMerge[int32]},
		{"baseline.ShiloachVishkin", baseline.ShiloachVishkinMerge[int32]},
		{"bitonic.MergeParallel", bitonic.MergeParallel[int32]},
	}

	rng := rand.New(rand.NewSource(220))
	for _, kind := range workload.Kinds() {
		for _, sizes := range [][2]int{{0, 17}, {33, 0}, {257, 129}, {1000, 1500}} {
			a, b := workload.Pair(kind, sizes[0], sizes[1], 9)
			want := verify.ReferenceMerge(a, b)
			for _, p := range []int{1, 3, 8} {
				for _, m := range mergers {
					t.Run(fmt.Sprintf("%s/%s/%dx%d/p%d", m.name, kind, sizes[0], sizes[1], p), func(t *testing.T) {
						out := make([]int32, len(a)+len(b))
						m.run(a, b, out, p)
						// The bitonic network is not stable, but on plain
						// values the merged output is still unique.
						if !verify.Equal(out, want) {
							t.Fatalf("diverges from reference at first diff %d", firstDiff(out, want))
						}
					})
				}
			}
		}
		_ = rng
	}
}

// TestDifferentialSorters does the same across every sorting
// implementation.
func TestDifferentialSorters(t *testing.T) {
	type sorter struct {
		name string
		run  func(s []int32, p int)
	}
	sorters := []sorter{
		{"psort.Sort", func(s []int32, p int) { mergepath.Sort(s, p) }},
		{"psort.Dataflow", func(s []int32, p int) { mergepath.SortDataflow(s, p, 64) }},
		{"psort.CacheEfficient", func(s []int32, p int) { mergepath.CacheEfficientSort(s, 512, p) }},
		{"bitonic.Sort", func(s []int32, p int) { bitonic.SortParallel(s, p) }},
		{"bitonic.OddEven", func(s []int32, p int) { bitonic.OddEvenSortParallel(s, p) }},
	}
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 12; trial++ {
		n := rng.Intn(4000)
		data := workload.Unsorted(rng, n)
		want := append([]int32(nil), data...)
		insertionSortHelper(want)
		for _, p := range []int{1, 4} {
			for _, s := range sorters {
				got := append([]int32(nil), data...)
				s.run(got, p)
				if !verify.Equal(got, want) {
					t.Fatalf("%s n=%d p=%d: diverges at %d", s.name, n, p, firstDiff(got, want))
				}
			}
		}
	}
}

func firstDiff(a, b []int32) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}

func insertionSortHelper(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
